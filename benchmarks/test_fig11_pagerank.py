"""Fig. 11 — PageRank across Spangle, Spark, and GraphX.

20 power-method iterations over the four Table-IIb graphs (scaled with
their edge/vertex ratios preserved; Zipf in-degree skew). The paper
applies the sparse chunk mode to Enron/Epinions/Twitter and the
super-sparse mode to LiveJournal — reproduced here via
``GraphSpec.spangle_mode``.

Shape claims:
- all three systems agree numerically;
- plain Spark (per-edge contribution shuffle each iteration) is the
  slowest of the three on every graph;
- GraphX's per-iteration cost grows with iterations (fresh RDDs and
  shuffles each superstep) while Spangle's per-iteration cost stays
  flat (the cached bitmask structure is reused, nothing shuffles);
- on the Twitter-like graph — the highest edge/vertex ratio — Spangle's
  modeled time beats GraphX (the crossover the paper reports).
"""

import numpy as np
import pytest

from benchmarks.harness import fresh_context, print_table, run_measured
from repro.baselines import GraphXPageRank, SparkPageRank
from repro.data import GRAPH_SPECS, scaled_graph
from repro.ml import BitmaskGraph, pagerank

GRAPHS = ("enron", "epinions", "livejournal", "twitter")
ITERATIONS = 20


def _run_graph(ctx, name):
    spec = GRAPH_SPECS[name]
    edges, num_vertices = scaled_graph(name, seed=0)
    out = {}

    graph = BitmaskGraph.from_edges(
        ctx, edges, num_vertices, block_size=1024,
        mode=spec.spangle_mode).cache()
    graph.num_edges()
    out["Spangle"] = run_measured(
        ctx, pagerank, graph, 0.85, ITERATIONS)

    out["Spark"] = run_measured(
        ctx, SparkPageRank(ctx).run, edges, num_vertices, 0.85,
        ITERATIONS)

    out["GraphX"] = run_measured(
        ctx, GraphXPageRank(ctx).run, edges, num_vertices, 0.85,
        ITERATIONS)
    return out, edges, num_vertices


@pytest.mark.parametrize("name", GRAPHS)
def test_fig11(benchmark, name):
    ctx = fresh_context()
    (results, edges, num_vertices) = benchmark.pedantic(
        lambda: _run_graph(ctx, name), rounds=1, iterations=1)
    spec = GRAPH_SPECS[name]
    rows = [
        [system, results[system].cell(),
         f"{np.mean(results[system].value.iteration_times_s) * 1000:.1f}ms"]
        for system in ("Spangle", "Spark", "GraphX")
    ]
    print_table(
        f"Fig. 11 — PageRank, {name}-like: |V|={num_vertices} "
        f"|E|={len(edges)} (paper: |V|={spec.paper_vertices} "
        f"|E|={spec.paper_edges}), 20 iterations",
        ["system", "total (wall / modeled)", "per-iteration"], rows)

    spangle = results["Spangle"]
    spark = results["Spark"]
    graphx = results["GraphX"]
    for cell in (spangle, spark, graphx):
        assert cell.failed is None

    # all three agree on the ranks
    assert np.allclose(spangle.value.ranks, graphx.value.ranks,
                       atol=1e-8)
    assert np.allclose(spangle.value.ranks, spark.value.ranks,
                       atol=1e-6)

    # plain Spark's per-edge shuffle makes it the slowest
    assert spark.modeled_s > spangle.modeled_s
    assert spark.modeled_s > graphx.modeled_s

    # Spangle's per-iteration cost stays flat; GraphX's trends upward
    spangle_times = spangle.value.iteration_times_s
    first_half = np.mean(spangle_times[2:ITERATIONS // 2])
    second_half = np.mean(spangle_times[ITERATIONS // 2:])
    assert second_half < first_half * 2.0

    if name == "twitter":
        # the crossover: on the densest graph Spangle wins outright
        assert spangle.modeled_s < graphx.modeled_s


def test_fig11_memory_one_bit_per_edge(benchmark):
    """Supporting claim: the bitmask adjacency stores edges in bits.

    GraphX/Spark keep 16 bytes per edge (two vertex ids); Spangle's
    sparse blocks cost at most a few bits per *cell*, and its
    super-sparse blocks ~8 bytes per edge.
    """
    edges, num_vertices = scaled_graph("twitter", seed=0)
    ctx = fresh_context()
    graph = benchmark.pedantic(
        lambda: BitmaskGraph.from_edges(ctx, edges, num_vertices,
                                        block_size=1024),
        rounds=1, iterations=1)
    edge_list_bytes = len(edges) * 16
    print_table(
        "Fig. 11 supporting — adjacency footprint",
        ["representation", "bytes"],
        [["edge list (16 B/edge)", edge_list_bytes],
         ["Spangle bitmask blocks", graph.memory_bytes()]])
    assert graph.memory_bytes() < edge_list_bytes
