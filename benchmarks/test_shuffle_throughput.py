"""Columnar vs per-record shuffle throughput.

Two shuffle-bound workloads from the paper's query mix:

- **chunk-keyed reduce**: 1.2M cell records ``(chunk_id, value)`` over a
  fine chunk grid, summed per chunk — the shape that ``aggregate_by``
  and the window operators emit. With the columnar data plane (the
  default) the map side packs keys and values into record batches,
  buckets them with one argsort, and folds equal keys in one numpy
  pass; ``disable_columnar()`` runs the original dict-per-record path.
- **matmul gather**: the output-chunk gather shuffle of a blocked
  matrix multiply. Its values are ~32KB partial blocks, which the
  columnar path deliberately refuses to pack (copying them costs more
  than per-record framing saves), so this one guards against
  regression rather than demonstrating speedup.

Run as a script to emit the JSON artifact::

    PYTHONPATH=src python benchmarks/test_shuffle_throughput.py shuffle.json
"""

from __future__ import annotations

import json
import os
import pickle
import time

import numpy as np

if __package__ in (None, ""):
    # allow `python benchmarks/test_shuffle_throughput.py` (the CI
    # smoke job) as well as `pytest benchmarks/`
    import sys

    sys.path.insert(0, os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))

from benchmarks.harness import (
    fresh_context,
    print_table,
    write_trace_artifact,
)
from repro.engine import disable_columnar, enable_columnar
from repro.matrix import SpangleMatrix

#: assert at least this speedup for the chunk-keyed columnar reduce
SPEEDUP_TARGET = 2.0
#: the matmul gather ships its blocks by reference in both modes; only
#: guard against the columnar attempt becoming a material regression
MATMUL_FLOOR = 0.7
REPEATS = 3

NUM_CELLS = 1_200_000
CELLS_PER_CHUNK = 16         # fine grid -> 75k chunk keys
NUM_CHUNKS = NUM_CELLS // CELLS_PER_CHUNK

MATMUL_SHAPE = (512, 512)
MATMUL_BLOCK = (64, 64)


def _cell_records():
    rng = np.random.default_rng(11)
    chunk_ids = rng.integers(0, NUM_CHUNKS, NUM_CELLS).tolist()
    values = rng.random(NUM_CELLS).tolist()
    return list(zip(chunk_ids, values))


def _run_reduce_mode(columnar: bool) -> dict:
    toggle = enable_columnar if columnar else disable_columnar
    with toggle():
        ctx = fresh_context(8)
        base = ctx.parallelize(_cell_records(), 8).cache()
        base.count()             # timings cover the shuffle, not ingest
        walls = []
        result = None
        before = ctx.metrics.snapshot()
        for _ in range(REPEATS):
            summed = base.reduce_by_key(lambda a, b: a + b,
                                        combine_kernel="sum")
            start = time.perf_counter()
            result = summed.collect()
            walls.append(time.perf_counter() - start)
        delta = ctx.metrics.snapshot() - before
        ctx.shutdown()
    return {
        "wall_s": min(walls),
        "result_pickle": pickle.dumps(result),
        "num_keys": len(result),
        "shuffle_records": delta.shuffle_records,
        "shuffle_bytes": delta.shuffle_bytes,
        "shuffle_batches": delta.shuffle_batches,
        "shuffle_batch_records": delta.shuffle_batch_records,
    }


def _run_matmul_mode(columnar: bool) -> dict:
    toggle = enable_columnar if columnar else disable_columnar
    with toggle():
        ctx = fresh_context(8)
        rng = np.random.default_rng(3)
        dense = rng.random(MATMUL_SHAPE)
        matrix = SpangleMatrix.from_numpy(ctx, dense, MATMUL_BLOCK)
        walls = []
        product = None
        for _ in range(REPEATS):
            start = time.perf_counter()
            product = matrix.multiply(matrix).to_numpy()
            walls.append(time.perf_counter() - start)
        ctx.shutdown()
    return {"wall_s": min(walls), "product": product}


def run() -> dict:
    columnar = _run_reduce_mode(True)
    generic = _run_reduce_mode(False)
    reduce_speedup = generic["wall_s"] / max(columnar["wall_s"], 1e-9)
    identical = columnar.pop("result_pickle") \
        == generic.pop("result_pickle")

    mm_columnar = _run_matmul_mode(True)
    mm_generic = _run_matmul_mode(False)
    matmul_speedup = mm_generic["wall_s"] / max(mm_columnar["wall_s"],
                                                1e-9)
    mm_identical = np.array_equal(mm_columnar.pop("product"),
                                  mm_generic.pop("product"))

    artifact = {
        "num_cells": NUM_CELLS,
        "num_chunks": NUM_CHUNKS,
        "repeats": REPEATS,
        "reduce_speedup": reduce_speedup,
        "reduce_identical": identical,
        "columnar": columnar,
        "generic": generic,
        "matmul_speedup": matmul_speedup,
        "matmul_identical": mm_identical,
        "matmul_columnar_wall_s": mm_columnar["wall_s"],
        "matmul_generic_wall_s": mm_generic["wall_s"],
    }
    print_table(
        "columnar vs per-record shuffle (1.2M cells, 75k chunk keys)",
        ["mode", "wall", "records", "bytes", "batches",
         "batch records"],
        [
            ["columnar", f"{columnar['wall_s']:.3f}s",
             columnar["shuffle_records"], columnar["shuffle_bytes"],
             columnar["shuffle_batches"],
             columnar["shuffle_batch_records"]],
            ["generic", f"{generic['wall_s']:.3f}s",
             generic["shuffle_records"], generic["shuffle_bytes"],
             generic["shuffle_batches"],
             generic["shuffle_batch_records"]],
            ["speedup", f"{reduce_speedup:.2f}x", "", "", "", ""],
        ],
    )
    print_table(
        "matmul gather (blocks ship by reference in both modes)",
        ["mode", "wall"],
        [
            ["columnar", f"{mm_columnar['wall_s']:.3f}s"],
            ["generic", f"{mm_generic['wall_s']:.3f}s"],
            ["ratio", f"{matmul_speedup:.2f}x"],
        ],
    )
    return artifact


def test_columnar_reduce_speedup():
    artifact = run()
    columnar, generic = artifact["columnar"], artifact["generic"]
    assert artifact["reduce_identical"]
    assert columnar["num_keys"] == generic["num_keys"] == NUM_CHUNKS
    # every shuffled record rode a packed batch; the generic mode
    # shipped none
    assert columnar["shuffle_batches"] > 0
    assert columnar["shuffle_batch_records"] == columnar["shuffle_records"]
    assert generic["shuffle_batches"] == 0
    assert artifact["reduce_speedup"] >= SPEEDUP_TARGET, (
        f"expected >= {SPEEDUP_TARGET}x from the columnar data plane on "
        f"a chunk-keyed reduce, got {artifact['reduce_speedup']:.2f}x")
    assert artifact["matmul_identical"]
    assert artifact["matmul_speedup"] >= MATMUL_FLOOR, (
        f"columnar mode slowed the matmul gather to "
        f"{artifact['matmul_speedup']:.2f}x of generic")


def _traced_run(json_path: str) -> dict:
    """One traced columnar reduce: the event log for ``repro trace``."""
    ctx = fresh_context(8, trace=True)
    base = ctx.parallelize(_cell_records(), 8).cache()
    base.count()
    ctx.tracer.clear()          # trace the shuffle, not ingest
    base.reduce_by_key(lambda a, b: a + b,
                       combine_kernel="sum").collect()
    return write_trace_artifact(ctx, json_path)


def main(json_path: str = None) -> dict:
    artifact = run()
    if json_path:
        artifact["trace"] = _traced_run(json_path)
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2)
    print(json.dumps(artifact, indent=2))
    return artifact


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else None)
