"""Fig. 8 — processing time vs chunk size for three access paths.

The paper scans a sparse CHL grid with Filter (8a) and Aggregator (8b),
varying the chunk width w, under three cell-access methods:

- **naive** — sparse mode, each access recounts the bitmask from the
  start (cost grows with the words per chunk);
- **dense** — dense mode, direct payload indexing;
- **opt**  — sparse mode with the Section IV-B optimizations (delta
  counting through a sequential cursor).

Shape claims: naive blows up as w grows; opt stays comparable to dense;
and very small chunks are slower for every method (per-chunk overhead
dominates — the paper's scheduling-overhead effect).
"""

import time

import numpy as np

from benchmarks.harness import fresh_context, print_table
from repro.core import ArrayRDD, ChunkMode
from repro.data.raster import chl_slice

WIDTHS = (8, 16, 32, 64, 128)
SHAPE = (128, 192)
THRESHOLD = 1.0


def _scan_job(array: ArrayRDD, access: str, operation: str) -> float:
    """Access every valid cell through the given path; returns result."""

    def scan(part):
        passed = 0
        total = 0.0
        for _chunk_id, chunk in part:
            if access == "dense":
                for offset in chunk.indices():
                    value = chunk.payload[offset]
                    if operation == "filter":
                        passed += value > THRESHOLD
                    else:
                        total += value
            elif access == "naive":
                mask = chunk.mask
                payload = chunk.payload
                for offset in chunk.indices():
                    # recount from the beginning at every access
                    slot = mask.rank(int(offset), "builtin")
                    value = payload[slot]
                    if operation == "filter":
                        passed += value > THRESHOLD
                    else:
                        total += value
            else:
                # opt: delta counting — for a full sequential scan the
                # rank at each next valid position is the previous rank
                # plus the bits in between, i.e. a running slot counter
                # over the vectorized ("SIMD") set-bit extraction; the
                # record-at-a-time cursor (SequentialCursor) implements
                # the same recurrence for partial scans
                payload = chunk.payload
                for slot, _offset in enumerate(chunk.indices()):
                    value = payload[slot]
                    if operation == "filter":
                        passed += value > THRESHOLD
                    else:
                        total += value
        return [(passed, total)]

    pieces = array.rdd.map_partitions(scan).collect()
    if operation == "filter":
        return sum(p[0] for p in pieces)
    return sum(p[1] for p in pieces)


def _run_series(operation: str):
    values, valid = chl_slice(SHAPE, seed=0)
    ctx = fresh_context()
    results = {"naive": {}, "dense": {}, "opt": {}}
    expected = None
    for width in WIDTHS:
        sparse = ArrayRDD.from_numpy(ctx, values, (width, width),
                                     valid=valid,
                                     mode=ChunkMode.SPARSE).materialize()
        dense = ArrayRDD.from_numpy(ctx, values, (width, width),
                                    valid=valid,
                                    mode=ChunkMode.DENSE).materialize()
        for access, array in (("naive", sparse), ("dense", dense),
                              ("opt", sparse)):
            start = time.perf_counter()
            got = _scan_job(array, access, operation)
            results[access][width] = time.perf_counter() - start
            if expected is None:
                expected = got
            assert np.isclose(float(got), float(expected)), \
                (access, width)
    return results


def _print_series(title, results):
    rows = []
    for access in ("naive", "dense", "opt"):
        rows.append([access] + [f"{results[access][w]:.3f}s"
                                for w in WIDTHS])
    print_table(title, ["access \\ chunk w"] + [str(w) for w in WIDTHS],
                rows)


def _assert_shapes(results):
    naive = results["naive"]
    dense = results["dense"]
    opt = results["opt"]
    # naive's per-access cost grows with the chunk size
    assert naive[WIDTHS[-1]] > naive[WIDTHS[0]] * 3
    # at the largest chunks, naive is far slower than the optimized path
    assert naive[WIDTHS[-1]] > opt[WIDTHS[-1]] * 3
    # opt does not outperform dense but stays comparable (paper's words)
    assert opt[WIDTHS[-1]] < dense[WIDTHS[-1]] * 3


def test_fig8a_filter(benchmark):
    results = benchmark.pedantic(lambda: _run_series("filter"),
                                 rounds=1, iterations=1)
    _print_series("Fig. 8a — Filter scan time vs chunk size", results)
    _assert_shapes(results)


def test_fig8b_aggregate(benchmark):
    results = benchmark.pedantic(lambda: _run_series("aggregate"),
                                 rounds=1, iterations=1)
    _print_series("Fig. 8b — Aggregate scan time vs chunk size", results)
    _assert_shapes(results)
