"""Fig. 12 — SGD: partition sweep (12a) and the opt1/opt2 ablation (12b).

Fig. 12a sweeps the partition count of the distributed SGD. Each step
processes the full set of sample chunks (every partition contributes
all its local chunks), so the serial compute per step is constant and
the trade-off is purely distributional: few partitions serialize the
gradient work, many partitions multiply per-task scheduling and the
per-partition gradient traffic to the driver. The engine executes
tasks serially in-process, so the series reported is the modeled
cluster time ``wall/min(p, executors) + scheduling + traffic``
(:meth:`Measured.modeled_with_parallelism`) — the U-shape of the paper.

Fig. 12b fixes the partition count and toggles the Section VI-C
optimizations over the same fixed number of steps:
- base: materialize the transposed mini-batch every step (no opt1) and
  push the gradient vector through a physical distributed transpose
  (no opt2);
- opt1: gradient as ``((h(Mx)−y)ᵀ M)ᵀ`` — no matrix transpose;
- opt1+opt2: the trailing vector transpose becomes a metadata swap.

Shape: opt1 cuts a visible slice of the step time, opt2 cuts more, the
combination is large (paper: ~20% + ~30% ≈ 43%), and the learned
weights are bit-identical across variants.
"""

import numpy as np

from benchmarks.harness import fresh_context, print_table, run_measured
from repro.data import scaled_lr_dataset
from repro.data.lr_datasets import LR_SPECS
from repro.ml import DistributedSamples, LogisticRegression

PARTITIONS = (1, 2, 4, 8, 16, 32)
SWEEP_STEPS = 10
ABLATION_STEPS = 60
EXECUTORS = 8


def _big_url_like(rows=150_000, seed=0):
    """A row-scaled URL-like training set for the partition sweep.

    The sweep needs nontrivial compute per step so the parallelism
    term is visible against the scheduling term; the spec's feature
    space and sparsity are kept, only the row count grows.
    """
    spec = LR_SPECS["url"]
    data = scaled_lr_dataset("url", seed=seed)
    rng = np.random.default_rng(seed + 99)
    reps = rows // spec.train_rows + 1
    train = data["train"]
    all_rows = []
    all_cols = []
    all_vals = []
    all_labels = []
    offset = 0
    for _rep in range(reps):
        all_rows.append(train["rows"] + offset)
        perm = rng.permutation(spec.features)
        all_cols.append(perm[train["cols"]])
        all_vals.append(train["values"])
        all_labels.append(train["labels"])
        offset += spec.train_rows
    return {
        "rows": np.concatenate(all_rows)[: rows * spec.nnz_per_row],
        "cols": np.concatenate(all_cols)[: rows * spec.nnz_per_row],
        "values": np.concatenate(all_vals)[: rows * spec.nnz_per_row],
        "labels": np.concatenate(all_labels)[:rows],
        "features": spec.features,
    }


def test_fig12a_partition_sweep(benchmark):
    data = _big_url_like()
    total_chunks = -(-data["labels"].size // 256)

    def run():
        series = {}
        for parts in PARTITIONS:
            ctx = fresh_context(num_executors=EXECUTORS)
            samples = DistributedSamples.from_coo(
                ctx, data["rows"], data["cols"], data["values"],
                data["labels"], data["features"], chunk_rows=256,
                num_partitions=parts).cache()
            samples.nnz()
            per_partition = -(-total_chunks // parts)

            def train():
                model = LogisticRegression(
                    step_size=0.6, tolerance=0.0,
                    max_iterations=SWEEP_STEPS,
                    chunks_per_step=per_partition)
                model.fit(samples)
                return model

            series[parts] = run_measured(ctx, train)
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    modeled = {
        parts: cell.modeled_with_parallelism(min(parts, EXECUTORS))
        for parts, cell in series.items()
    }
    rows = [[parts, f"{series[parts].wall_s:.3f}s",
             f"{modeled[parts]:.3f}s"] for parts in PARTITIONS]
    print_table(
        "Fig. 12a — SGD time vs partitions (row-scaled URL-like)",
        ["partitions", "serial wall", "modeled cluster time"], rows)

    best = min(modeled, key=modeled.get)
    # the U: both extremes lose to the middle
    assert best not in (PARTITIONS[0], PARTITIONS[-1]), modeled
    assert modeled[PARTITIONS[0]] > modeled[best] * 1.2
    assert modeled[PARTITIONS[-1]] > modeled[best] * 1.2


def test_fig12b_optimization_ablation(benchmark):
    data = scaled_lr_dataset("url", seed=0)
    spec = data["spec"]
    variants = (
        ("base", False, False),
        ("opt1", True, False),
        ("opt1+opt2", True, True),
    )

    def run():
        times = {}
        weights = {}
        for label, opt1, opt2 in variants:
            ctx = fresh_context(num_executors=EXECUTORS)
            train = data["train"]
            samples = DistributedSamples.from_coo(
                ctx, train["rows"], train["cols"], train["values"],
                train["labels"], spec.features, chunk_rows=64,
                num_partitions=EXECUTORS).cache()
            samples.nnz()
            model = LogisticRegression(
                step_size=0.6, tolerance=0.0,
                max_iterations=ABLATION_STEPS, chunks_per_step=4,
                opt1=opt1, opt2=opt2, seed=3)
            measured = run_measured(ctx, model.fit, samples)
            times[label] = measured
            weights[label] = model.weights.data
        return times, weights

    times, weights = benchmark.pedantic(run, rounds=1, iterations=1)
    base = times["base"]
    rows = [[label, cell.cell(),
             f"{(1 - cell.wall_s / base.wall_s) * 100:+.1f}%"]
            for label, cell in times.items()]
    print_table("Fig. 12b — SGD optimization ablation (URL-like, "
                f"{ABLATION_STEPS} fixed steps)",
                ["variant", "train (wall / modeled)", "wall vs base"],
                rows)

    # optimizations are performance-only: identical learned weights
    assert np.allclose(weights["base"], weights["opt1+opt2"])
    assert np.allclose(weights["base"], weights["opt1"])

    # opt1 avoids the per-step matrix transpose (compute saving)
    assert times["opt1"].wall_s < base.wall_s
    # opt2 removes the physical vector transpose (jobs + shuffles)
    assert times["opt1+opt2"].wall_s < times["opt1"].wall_s
    assert times["opt1+opt2"].modeled_s < times["opt1"].modeled_s
    # combined improvement is substantial (paper reports ~43%)
    assert times["opt1+opt2"].wall_s < base.wall_s * 0.7
