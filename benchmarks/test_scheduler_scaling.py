"""Scheduler scaling — serial vs the persistent-executor-pool path.

A shuffle-heavy numpy workload (per-record dense kernels feeding a
``reduce_by_key``) run twice on identical data: ``use_threads=False``
(the deterministic default) and ``use_threads=True`` (shuffle map
tasks and result tasks spread over the context's persistent executor
pool). numpy releases the GIL inside the kernels, so on a multi-core
host the threaded run overlaps map tasks and the wall-clock drops.

Shape claims: results are byte-identical between the two modes and the
logical metrics (stages, tasks, shuffle bytes) match exactly; on hosts
with >= 4 cores the threaded run is >= 1.5x faster. Per-stage wall
times and executor utilization are printed for both runs, and
``main()`` writes the stage-breakdown JSON artifact consumed by CI.
"""

from __future__ import annotations

import json
import os

import numpy as np

if __package__ in (None, ""):
    # allow `python benchmarks/test_scheduler_scaling.py` (the CI smoke
    # job) as well as `pytest benchmarks/`
    import sys

    sys.path.insert(0, os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))

from benchmarks.harness import (
    print_stage_breakdown,
    print_table,
    run_measured,
    write_trace_artifact,
)
from repro.engine import ClusterContext

NUM_PARTITIONS = 8
RECORDS_PER_PARTITION = 3
BLOCK_CELLS = 400_000
KERNEL_PASSES = 4
NUM_KEYS = 4
SPEEDUP_TARGET = 1.5


def _make_rdd(ctx):
    """(key, dense block) records; the generator runs inside tasks."""

    def gen(index):
        rng = np.random.default_rng(1000 + index)
        return [
            (index % NUM_KEYS, rng.random(BLOCK_CELLS))
            for _ in range(RECORDS_PER_PARTITION)
        ]

    return ctx.generate(NUM_PARTITIONS, gen)


def _kernel(block):
    # single-threaded, GIL-releasing ufunc passes: the speedup must
    # come from the executor pool, not from a multi-threaded BLAS that
    # would accelerate the serial baseline too
    acc = block
    for _ in range(KERNEL_PASSES):
        acc = np.sqrt(acc * acc + 1.0)
    return float(acc.sum())


def _workload(ctx):
    """Heavy map kernel under a shuffle: the stage-parallel shape."""
    summed = (
        _make_rdd(ctx)
        .map_values(_kernel)
        .reduce_by_key(lambda a, b: a + b)
    )
    return sorted(summed.collect())


def _run_mode(use_threads):
    with ClusterContext(num_executors=4, default_parallelism=NUM_PARTITIONS,
                        use_threads=use_threads) as ctx:
        before = ctx.metrics.snapshot()
        measured = run_measured(ctx, _workload, ctx)
        delta = ctx.metrics.snapshot() - before
    return measured, delta


def _speedup_expected() -> bool:
    return (os.cpu_count() or 1) >= 4


def test_threaded_shuffle_scaling(capsys=None):
    serial, serial_delta = _run_mode(False)
    threaded, threaded_delta = _run_mode(True)

    # determinism contract: identical values, identical logical metrics
    assert serial.value == threaded.value
    for field_name in ("stages_run", "tasks_launched", "shuffle_records",
                       "shuffle_bytes", "shuffles_performed"):
        assert getattr(serial_delta, field_name) \
            == getattr(threaded_delta, field_name), field_name

    speedup = serial.wall_s / max(threaded.wall_s, 1e-9)
    print_table(
        "Scheduler scaling (ufunc kernels under reduce_by_key)",
        ["mode", "wall", "utilization", "stages", "tasks"],
        [
            ["serial", f"{serial.wall_s:.3f}s",
             f"{serial.utilization * 100:.0f}%",
             serial_delta.stages_run, serial_delta.tasks_launched],
            ["threads x4", f"{threaded.wall_s:.3f}s",
             f"{threaded.utilization * 100:.0f}%",
             threaded_delta.stages_run, threaded_delta.tasks_launched],
            ["speedup", f"{speedup:.2f}x", "", "", ""],
        ],
    )
    print_stage_breakdown("serial", serial)
    print_stage_breakdown("threads x4", threaded)

    assert len(threaded.stage_timings) >= 2  # shuffle map + result
    if _speedup_expected():
        assert speedup >= SPEEDUP_TARGET, (
            f"expected >= {SPEEDUP_TARGET}x on a multi-core host, "
            f"got {speedup:.2f}x")


def main(json_path: str = None) -> dict:
    """Run both modes and write the stage-breakdown JSON artifact."""
    serial, serial_delta = _run_mode(False)
    threaded, threaded_delta = _run_mode(True)
    artifact = {
        "cpu_count": os.cpu_count(),
        "speedup": serial.wall_s / max(threaded.wall_s, 1e-9),
        "modes": {
            "serial": {
                "wall_s": serial.wall_s,
                "utilization": serial.utilization,
                "stages_run": serial_delta.stages_run,
                "tasks_launched": serial_delta.tasks_launched,
                "shuffle_bytes": serial_delta.shuffle_bytes,
                "stage_timings": [
                    timing.as_dict() for timing in serial.stage_timings],
            },
            "threaded": {
                "wall_s": threaded.wall_s,
                "utilization": threaded.utilization,
                "stages_run": threaded_delta.stages_run,
                "tasks_launched": threaded_delta.tasks_launched,
                "shuffle_bytes": threaded_delta.shuffle_bytes,
                "stage_timings": [
                    timing.as_dict() for timing in threaded.stage_timings],
            },
        },
    }
    if json_path:
        with ClusterContext(num_executors=4,
                            default_parallelism=NUM_PARTITIONS,
                            use_threads=True, trace=True) as ctx:
            _workload(ctx)
            artifact["trace"] = write_trace_artifact(ctx, json_path)
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2)
    print(json.dumps(artifact, indent=2))
    return artifact


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else None)
