"""Interactive analysis session: stats, plans, updates, re-layout.

The paper pitches Spangle for "interactive analysis"; this example
walks through the workflow an analyst would actually use: describe the
data, look at its distribution, inspect the engine's execution plan,
patch bad cells, re-chunk for a different access pattern, and compute
running accumulations — all on the same distributed array.

Run:  python examples/interactive_analysis.py
"""

import numpy as np

from repro import ArrayRDD, ClusterContext
from repro.core.accumulate import accumulate_axis
from repro.core.reshape import permute_axes, rechunk
from repro.core.stats import approx_quantiles, describe, histogram
from repro.core.updates import delete_where, merge_cells
from repro.engine.explain import explain


def main():
    ctx = ClusterContext(num_executors=4)

    # sensor grid: hourly readings from a 200x150 station array, with
    # dropouts and a few wildly miscalibrated cells
    rng = np.random.default_rng(3)
    readings = rng.normal(loc=20.0, scale=4.0, size=(200, 150))
    bad = rng.random((200, 150)) < 0.002
    readings[bad] = 9999.0                       # sensor glitches
    valid = rng.random((200, 150)) < 0.8          # dropouts
    grid = ArrayRDD.from_numpy(ctx, readings, (50, 50), valid=valid,
                               dim_names=("station_x", "station_y"))

    # ---- first look ----------------------------------------------------
    summary = describe(grid)
    print("describe():")
    for key, value in summary.as_dict().items():
        print(f"  {key:<6} {value:,.3f}" if isinstance(value, float)
              else f"  {key:<6} {value:,}")

    q05, q50, q95 = approx_quantiles(grid, [0.05, 0.5, 0.95],
                                     sample_fraction=1.0)
    print(f"quantiles: p05={q05:.2f}  median={q50:.2f}  p95={q95:.2f}")
    print(f"max of {summary.maximum:.0f} is clearly a glitch — "
          f"clean it up:")

    # ---- repair ---------------------------------------------------------
    cleaned = delete_where(grid, lambda xs: xs > 100.0)
    removed = grid.count_valid() - cleaned.count_valid()
    print(f"  deleted {removed} glitched cells")
    # backfill two known stations from a maintenance log
    cleaned = merge_cells(cleaned, [((0, 0), 19.5), ((10, 20), 21.2)],
                          how="replace")
    print(f"  backfilled 2 stations; mean now "
          f"{describe(cleaned).mean:.3f}")

    # ---- distribution ----------------------------------------------------
    counts, edges = histogram(cleaned, bins=8)
    print("\nhistogram:")
    peak = counts.max()
    for count, lo, hi in zip(counts, edges, edges[1:]):
        bar = "#" * int(40 * count / peak)
        print(f"  [{lo:6.2f}, {hi:6.2f})  {bar} {count}")

    # ---- inspect the plan -------------------------------------------------
    pipeline = cleaned.filter(lambda xs: xs > 20.0) \
                      .aggregate_by(["station_x"], "avg")
    print("\nexecution plan for filter → aggregate_by(station_x):")
    print(explain(pipeline.rdd))

    # ---- re-layout --------------------------------------------------------
    tall = rechunk(cleaned, (200, 10))
    print(f"\nrechunked to column strips: "
          f"{tall.num_chunks_materialized()} chunks of "
          f"{tall.meta.chunk_shape}")
    flipped = permute_axes(cleaned, (1, 0))
    print(f"transposed logical layout: {flipped.meta.describe()}")

    # ---- running accumulation ----------------------------------------------
    cumulative = accumulate_axis(cleaned, "station_y", "sum",
                                 mode="async")
    values, _valid = cumulative.subarray((0, 149), (199, 149)) \
                               .collect_dense(0.0)
    print(f"\nrow totals via running sum, first three rows: "
          f"{values[:3, 149].round(1)}")


if __name__ == "__main__":
    main()
