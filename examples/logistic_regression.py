"""Large-scale logistic regression with Spangle's customized SGD.

Trains on the URL-reputation-shaped dataset of Table IIc: Eq.-2 chunk
numbering places sample chunks without coordination, every SGD step
samples chunks per-partition with no shuffle, and the gradient is
computed transpose-free (opt1) with a metadata-only vector transpose
(opt2). The example reports the accuracy and then toggles the two
optimizations to show the per-step cost difference (Fig. 12b's
ablation).

Run:  python examples/logistic_regression.py
"""

import time

from repro import ClusterContext
from repro.data import scaled_lr_dataset
from repro.ml import DistributedSamples, LogisticRegression


def build_samples(ctx, split, num_features):
    return DistributedSamples.from_coo(
        ctx, split["rows"], split["cols"], split["values"],
        split["labels"], num_features, chunk_rows=256).cache()


def main():
    ctx = ClusterContext(num_executors=8, default_parallelism=8)

    data = scaled_lr_dataset("url", seed=0)
    spec = data["spec"]
    print(f"URL-like dataset (scale 1/{spec.scale}): "
          f"{spec.train_rows:,} train rows, {spec.test_rows:,} test "
          f"rows, {spec.features:,} features "
          f"(paper: {spec.paper_train_rows:,}/{spec.paper_test_rows:,}"
          f"/{spec.paper_features:,})")

    train = build_samples(ctx, data["train"], spec.features)
    test = build_samples(ctx, data["test"], spec.features)
    print(f"training chunks per partition: "
          f"{train.chunks_per_partition}")

    model = LogisticRegression(step_size=0.6, tolerance=1e-4,
                               max_iterations=250, chunks_per_step=3)
    start = time.perf_counter()
    model.fit(train)
    elapsed = time.perf_counter() - start
    print(f"\ntrained in {elapsed:.2f}s "
          f"({model.history.iterations} iterations, final residual "
          f"{model.history.residuals[-1]:.2e})")
    print(f"train accuracy: {model.accuracy(train):.2%}")
    print(f"test  accuracy: {model.accuracy(test):.2%} "
          f"(paper reports {spec.paper_accuracy:.2%} on the full "
          f"dataset)")

    # the sampling step moves no data: verify with engine metrics
    before = ctx.metrics.snapshot()
    train.sampled_gradient(model.weights.data, step=0)
    delta = ctx.metrics.snapshot() - before
    print(f"\none gradient step shuffled {delta.shuffle_bytes} bytes "
          f"(Eq. 2 sampling is shuffle-free)")

    # opt1/opt2 ablation over a fixed step budget
    print("\noptimization ablation (60 fixed steps):")
    for label, opt1, opt2 in (("base        ", False, False),
                              ("opt1        ", True, False),
                              ("opt1 + opt2 ", True, True)):
        variant = LogisticRegression(step_size=0.6, tolerance=0.0,
                                     max_iterations=60,
                                     chunks_per_step=3, opt1=opt1,
                                     opt2=opt2, seed=3)
        start = time.perf_counter()
        variant.fit(train)
        print(f"  {label}: {time.perf_counter() - start:.3f}s "
              f"(test acc {variant.accuracy(test):.2%})")


if __name__ == "__main__":
    main()
