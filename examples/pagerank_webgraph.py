"""PageRank on a web-scale-shaped graph via the bitmask adjacency.

Builds a Twitter-shaped directed graph (edge/vertex ratio and degree
skew preserved from Table IIb), stores it as bitmask blocks — one bit
per potential edge, offsets for super-sparse blocks — and runs the
decomposed power method p ← αA'(w∘p) + (1−α)/n of Section VI-B.
Compares against the plain-Spark and GraphX-style baselines.

Run:  python examples/pagerank_webgraph.py
"""

import numpy as np

from repro import ClusterContext
from repro.baselines import GraphXPageRank, SparkPageRank
from repro.data import GRAPH_SPECS, scaled_graph
from repro.ml import BitmaskGraph, pagerank


def main():
    ctx = ClusterContext(num_executors=8, default_parallelism=8)

    spec = GRAPH_SPECS["twitter"]
    edges, num_vertices = scaled_graph("twitter", seed=5)
    print(f"twitter-like graph: |V|={num_vertices:,} |E|={len(edges):,}"
          f" (paper: |V|={spec.paper_vertices:,} "
          f"|E|={spec.paper_edges:,}; ratio "
          f"{spec.edge_vertex_ratio:.1f} preserved)")

    graph = BitmaskGraph.from_edges(ctx, edges, num_vertices,
                                    block_size=1024).cache()
    edge_list_bytes = len(edges) * 16
    print(f"adjacency: {graph.memory_bytes():,} bytes as bitmask "
          f"blocks vs {edge_list_bytes:,} as an edge list")

    result = pagerank(graph, damping=0.85, max_iterations=20)
    print(f"\nSpangle PageRank: {result.iterations} iterations in "
          f"{result.total_time_s:.3f}s "
          f"({np.mean(result.iteration_times_s) * 1000:.1f} ms/iter)")
    print("top-5 vertices:")
    for vertex, rank in result.top_k(5):
        in_degree = int((edges[:, 1] == vertex).sum())
        print(f"  vertex {vertex:>6}  rank {rank:.5f}  "
              f"in-degree {in_degree}")

    # compare with the two Spark-family baselines
    spark = SparkPageRank(ctx).run(edges, num_vertices,
                                   max_iterations=20)
    graphx = GraphXPageRank(ctx).run(edges, num_vertices,
                                     max_iterations=20)
    print(f"\nagreement: max |Spangle - GraphX| = "
          f"{np.abs(result.ranks - graphx.ranks).max():.2e}, "
          f"max |Spangle - Spark| = "
          f"{np.abs(result.ranks - spark.ranks).max():.2e}")
    print(f"end-to-end wall: Spangle {result.total_time_s:.2f}s, "
          f"GraphX {graphx.total_time_s:.2f}s, "
          f"Spark {spark.total_time_s:.2f}s")

    # per-iteration shuffle traffic is where the architectures differ
    graph2 = BitmaskGraph.from_edges(ctx, edges, num_vertices,
                                     block_size=1024).cache()
    graph2.num_edges()
    before = ctx.metrics.snapshot()
    pagerank(graph2, max_iterations=5)
    spangle_shuffle = (ctx.metrics.snapshot() - before).shuffle_bytes
    before = ctx.metrics.snapshot()
    SparkPageRank(ctx).run(edges, num_vertices, max_iterations=5)
    spark_shuffle = (ctx.metrics.snapshot() - before).shuffle_bytes
    print(f"\nshuffle bytes over 5 iterations: Spangle "
          f"{spangle_shuffle:,} — Spark {spark_shuffle:,}")


if __name__ == "__main__":
    main()
