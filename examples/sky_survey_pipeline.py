"""Multi-band sky-survey pipeline: column store, MaskRDD, fault tolerance.

Processes an SDSS-like five-band image stack the way the paper's
Table-I queries do: a shared MaskRDD keeps all bands consistent while
filters chain lazily, windows compute source densities, and a stencil
blurs images using overlap instead of shuffles. Finishes by killing
cached blocks mid-computation to demonstrate lineage recovery.

Run:  python examples/sky_survey_pipeline.py
"""

import numpy as np

from repro import ClusterContext
from repro.core.overlap import mean_stencil, stencil
from repro.data import sdss_like
from repro.engine.lineage import FaultInjector
from repro.queries import SpangleRasterQueries, load_spangle_dataset


def main():
    ctx = ClusterContext(num_executors=4)

    bands = sdss_like(num_images=12, shape=(256, 256),
                      objects_per_image=180, seed=21)
    dataset = load_spangle_dataset(ctx, bands, chunk_shape=(64, 64, 1))
    print(f"dataset: {dataset}")
    u = dataset.attribute("u")
    print(f"  cells with sources: {u.count_valid():,} of "
          f"{u.meta.num_cells:,} "
          f"({u.count_valid() / u.meta.num_cells:.1%})")

    # ---- chained filters across bands, one lazy mask ------------------
    focused = (
        dataset
        .filter("u", lambda xs: xs > 0.5)    # bright in u
        .filter("z", lambda xs: xs > 1.5)    # and in z
        .subarray((32, 32, 0), (223, 223, 11))
    )
    # nothing has been computed yet — the MaskRDD carries the plan
    z_sources = focused.evaluate("z")
    print(f"\nsources bright in u AND z, inside the survey window: "
          f"{z_sources.count_valid():,}")
    print(f"  mean z flux: {z_sources.aggregate('avg'):.2f}")

    # ---- density map (Table I's Q5) ------------------------------------
    queries = SpangleRasterQueries(dataset)
    crowded = queries.q5_density("u", window=32, min_count=60)
    print(f"\ncrowded 32x32 windows (>60 observations): {crowded}")

    # ---- blur via overlap (no whole-chunk shuffles) --------------------
    # per-axis depth: halos in x and y, none along the image axis
    blurred = stencil(u, mean_stencil((2, 2, 0)), depth=(2, 2, 0))
    print(f"\n5x5 blur over all images: mean flux "
          f"{blurred.aggregate('avg'):.3f} "
          f"(original {u.aggregate('avg'):.3f})")

    # ---- fault tolerance -----------------------------------------------
    u.materialize()
    expected = u.aggregate("sum")
    injector = FaultInjector(ctx, seed=2)
    lost = injector.strike(u.rdd, kill_fraction=0.6)
    recomputed = u.aggregate("sum")
    print(f"\nfault injection: lost {lost} cached blocks; "
          f"lineage recomputed them "
          f"(sums agree: {np.isclose(expected, recomputed)})")
    print(f"engine recomputations: {ctx.metrics.recomputations}")


if __name__ == "__main__":
    main()
