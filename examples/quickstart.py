"""Quickstart: distributed arrays with bitmask-managed sparsity.

Creates a sparse 2-D array, inspects how Spangle chunks and compresses
it, and runs the core operators: Subarray, Filter, element-wise
combination, and aggregation.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ArrayRDD, ClusterContext


def main():
    ctx = ClusterContext(num_executors=4)

    # a 1000x800 array where only ~15% of cells carry data
    rng = np.random.default_rng(7)
    values = rng.random((1000, 800)) * 100
    valid = rng.random((1000, 800)) < 0.15

    array = ArrayRDD.from_numpy(ctx, values, chunk_shape=(128, 128),
                                valid=valid)
    print("array:", array)
    print(f"  valid cells      : {array.count_valid():,} "
          f"of {array.meta.num_cells:,}")
    print(f"  chunks in memory : {array.num_chunks_materialized()} "
          f"of {array.meta.num_chunks} (empty chunks never exist)")
    sparse_bytes = array.memory_bytes()
    dense_bytes = values.nbytes
    print(f"  footprint        : {sparse_bytes / 1024:.0f} KiB "
          f"(dense would be {dense_bytes / 1024:.0f} KiB, "
          f"{dense_bytes / sparse_bytes:.1f}x more)")

    # chunk modes chosen by density
    modes = array.rdd.map(
        lambda kv: (kv[1].mode.value, 1)).count_by_key()
    print(f"  chunk modes      : {dict(modes)}")

    # point queries go through Algorithm 1 (coords -> chunk id -> rank)
    coords = tuple(int(c) for c in np.argwhere(valid)[0])
    print(f"\npoint query at {coords}: {array.get(coords):.3f} "
          f"(numpy says {values[coords]:.3f})")

    # Subarray: chunks are pruned by ID before any data is touched
    box = array.subarray((100, 100), (499, 399))
    print(f"\nsubarray [100:500, 100:400]:")
    print(f"  chunks touched   : {box.num_chunks_materialized()}")
    print(f"  mean             : {box.aggregate('avg'):.3f}")

    # Filter: failing cells become invalid; empty chunks vanish
    high = array.filter(lambda xs: xs > 90)
    print(f"\nfilter (> 90): {high.count_valid():,} cells remain, "
          f"min = {high.aggregate('min'):.3f}")

    # element-wise combination with and/or join semantics
    other = ArrayRDD.from_numpy(
        ctx, rng.random((1000, 800)), chunk_shape=(128, 128),
        valid=rng.random((1000, 800)) < 0.15)
    both = array.combine(other, np.add, how="and")
    either = array.combine(other, np.add, how="or")
    print(f"\nand-join keeps {both.count_valid():,} cells; "
          f"or-join keeps {either.count_valid():,}")

    # group-by-dimension aggregation produces a new (smaller) array
    row_means = array.aggregate_by([0], "avg")
    print(f"\nper-row averages: a new {row_means.meta.shape} array, "
          f"first value {row_means.get((0,)):.3f}")

    # the engine underneath is a mini-Spark: inspect the job metrics
    m = ctx.metrics.snapshot()
    print(f"\nengine: {m.jobs_run} jobs, {m.tasks_launched} tasks, "
          f"{m.shuffle_bytes:,} shuffle bytes")


if __name__ == "__main__":
    main()
