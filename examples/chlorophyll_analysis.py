"""Ocean chlorophyll analysis — the paper's motivating raster workload.

Generates a SeaWiFS-like (lat, lon, time) chlorophyll grid (two thirds
of cells are land/no-retrieval nulls), writes it to the SNF container
format, loads it back as a SpangleDataset, and runs the analysis the
paper sketches in Section II-B: focus on cells where the concentration
exceeds a threshold, then summarize by region and by time step.

Run:  python examples/chlorophyll_analysis.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import ClusterContext
from repro.core.overlap import mean_stencil, stencil
from repro.data import chl_like
from repro.io import write_snf
from repro.io.snf import load_snf_as_dataset

THRESHOLD = 1.2  # mg/m^3 — "scientists only focus on chlorophyll
                 # where values are greater than a specific threshold"


def main():
    ctx = ClusterContext(num_executors=4)

    # ---- generate and persist a dataset ------------------------------
    values, valid = chl_like(shape=(180, 270, 4), seed=11)
    workdir = Path(tempfile.mkdtemp(prefix="chl-"))
    path = workdir / "seawifs_like.snf"
    write_snf(path, {"lat": 180, "lon": 270, "time": 4},
              {"chlorophyll": values}, valid)
    print(f"wrote {path} ({path.stat().st_size / 1024:.0f} KiB)")

    # ---- ingest -------------------------------------------------------
    dataset = load_snf_as_dataset(ctx, path, chunk_shape=(64, 64, 1))
    chl = dataset.attribute("chlorophyll")
    print(f"loaded: {chl.meta.describe()}")
    print(f"  retrievals : {chl.count_valid():,} "
          f"({chl.count_valid() / chl.meta.num_cells:.0%} of cells)")
    print(f"  global mean: {chl.aggregate('avg'):.3f} mg/m^3")

    # ---- threshold focus (Filter translates cells to null) ------------
    blooms = dataset.filter("chlorophyll", lambda xs: xs > THRESHOLD)
    bloom_cells = blooms.evaluate("chlorophyll")
    print(f"\nbloom cells (> {THRESHOLD}): {bloom_cells.count_valid():,}")
    print(f"  bloom mean : {bloom_cells.aggregate('avg'):.3f}")
    print(f"  bloom max  : {bloom_cells.aggregate('max'):.3f}")

    # ---- summarize over time (Aggregator with a new schema) -----------
    by_time = chl.aggregate_by(["time"], "avg")
    series, _valid = by_time.collect_dense()
    print("\n8-day mean concentration per time step:")
    for step, mean in enumerate(series):
        print(f"  t={step}: {mean:.3f}")

    # ---- regional structure (aggregate over latitude bands) -----------
    by_lat = chl.aggregate_by(["lat"], "avg")
    lat_values, lat_valid = by_lat.collect_dense()
    north = lat_values[:90][lat_valid[:90]].mean()
    south = lat_values[90:][lat_valid[90:]].mean()
    print(f"\nmean by hemisphere: north={north:.3f} south={south:.3f}")

    # ---- smoothing with overlap (no whole-chunk shuffles) --------------
    smoothed = stencil(chl, mean_stencil(1), depth=1)
    print(f"\n3x3x3-smoothed field: {smoothed.count_valid():,} cells, "
          f"mean {smoothed.aggregate('avg'):.3f}")

    before = ctx.metrics.snapshot()
    stencil(chl, mean_stencil(1), depth=1).count_valid()
    halo_bytes = (ctx.metrics.snapshot() - before).shuffle_bytes
    print(f"  halo exchange moved {halo_bytes / 1024:.0f} KiB "
          f"(the array itself holds "
          f"{chl.memory_bytes() / 1024:.0f} KiB)")


if __name__ == "__main__":
    main()
