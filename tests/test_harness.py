"""Tests for the benchmark harness helpers."""

import pytest

from benchmarks.harness import (
    Measured,
    fresh_context,
    print_table,
    run_measured,
    timed,
)
from repro.errors import OutOfMemoryError


class TestRunMeasured:
    def test_success_captures_value_and_costs(self):
        ctx = fresh_context(2)
        result = run_measured(
            ctx, lambda: ctx.parallelize(range(10), 2).sum())
        assert result.value == 45
        assert result.failed is None
        assert result.wall_s >= 0
        assert result.modeled_s >= result.wall_s
        assert result.scheduling_s > 0

    def test_expected_failure_becomes_x_cell(self):
        ctx = fresh_context(2)

        def blow_up():
            raise OutOfMemoryError("driver", 100, 10)

        result = run_measured(ctx, blow_up)
        assert result.failed == "OutOfMemoryError"
        assert result.value is None
        assert result.cell().startswith("x (")

    def test_unexpected_failure_propagates(self):
        ctx = fresh_context(2)

        def broken():
            raise ValueError("genuine bug")

        with pytest.raises(ValueError):
            run_measured(ctx, broken)

    def test_expected_failure_inside_task(self):
        ctx = fresh_context(2)

        def job():
            def boom(_x):
                raise OutOfMemoryError("executor", 100, 10)

            ctx.parallelize([1], 1).map(boom).collect()

        result = run_measured(ctx, job)
        assert result.failed == "OutOfMemoryError"


class TestMeasured:
    def test_cell_format(self):
        ok = Measured(value=1, wall_s=0.5, modeled_s=1.25)
        assert ok.cell() == "0.500s / 1.250s"

    def test_modeled_with_parallelism(self):
        cell = Measured(value=None, wall_s=8.0, modeled_s=99.0,
                        network_s=1.0, scheduling_s=0.5, disk_s=0.25)
        assert cell.modeled_with_parallelism(4) == pytest.approx(
            8.0 / 4 + 1.0 + 0.5 + 0.25)
        # parallelism never divides the overhead terms
        assert cell.modeled_with_parallelism(1000) \
            > 1.0 + 0.5 + 0.25 - 1e-9

    def test_zero_ways_clamped(self):
        cell = Measured(value=None, wall_s=1.0, modeled_s=1.0)
        assert cell.modeled_with_parallelism(0) == pytest.approx(1.0)


class TestPrintTable:
    def test_alignment_and_content(self, capsys):
        print_table("demo", ["name", "value"],
                    [["short", 1], ["a-much-longer-name", 22]])
        out = capsys.readouterr().out
        assert "=== demo ===" in out
        lines = [line for line in out.splitlines() if "|" in line]
        # all rows share the same column boundary
        pipes = {line.index("|") for line in lines}
        assert len(pipes) == 1
        assert "a-much-longer-name" in out


class TestTimed:
    def test_returns_result_and_duration(self):
        value, seconds = timed(lambda x: x * 2, 21)
        assert value == 42
        assert seconds >= 0
