"""Tests for the ArrayRDD head/show conveniences."""

import numpy as np
import pytest

from repro.core import ArrayRDD
from repro.engine import ClusterContext


@pytest.fixture()
def ctx():
    return ClusterContext(num_executors=4, default_parallelism=4)


class TestHead:
    def test_returns_valid_cells(self, ctx):
        data = np.arange(36.0).reshape(6, 6)
        valid = data % 2 == 0
        arr = ArrayRDD.from_numpy(ctx, data, (3, 3), valid=valid)
        cells = arr.head(5)
        assert len(cells) == 5
        for coords, value in cells:
            assert valid[coords]
            assert value == data[coords]

    def test_fewer_cells_than_requested(self, ctx):
        data = np.zeros((4, 4))
        valid = np.zeros((4, 4), dtype=bool)
        valid[1, 1] = True
        arr = ArrayRDD.from_numpy(ctx, data, (2, 2), valid=valid)
        assert arr.head(10) == [((1, 1), 0.0)]

    def test_stops_early(self, ctx):
        arr = ArrayRDD.from_numpy(ctx, np.ones((64, 64)), (8, 8))
        before = ctx.metrics.snapshot()
        arr.head(3)
        delta = ctx.metrics.snapshot() - before
        assert delta.tasks_launched <= 2


class TestShow:
    def test_prints_table(self, ctx, capsys):
        data = np.arange(16.0).reshape(4, 4)
        arr = ArrayRDD.from_numpy(ctx, data, (2, 2),
                                  dim_names=("row", "col"),
                                  attribute="flux")
        arr.show(3)
        out = capsys.readouterr().out
        assert "row" in out and "col" in out and "flux" in out
        assert "more valid cells" in out

    def test_show_all_when_small(self, ctx, capsys):
        arr = ArrayRDD.from_numpy(ctx, np.ones((2, 2)), (2, 2))
        arr.show(10)
        out = capsys.readouterr().out
        assert "more valid cells" not in out
