"""Tests for ArrayRDD: creation, operators, aggregation."""

import numpy as np
import pytest

from repro.core import ArrayRDD
from repro.core.ingest import array_rdd_from_records, generate_array_rdd
from repro.core.metadata import ArrayMetadata
from repro.engine import ClusterContext
from repro.errors import ArrayError, ShapeMismatchError


@pytest.fixture()
def ctx():
    return ClusterContext(num_executors=4, default_parallelism=4)


def random_array(ctx, shape=(40, 30), chunk=(16, 16), density=0.4, seed=0):
    rng = np.random.default_rng(seed)
    data = rng.random(shape)
    valid = rng.random(shape) < density
    arr = ArrayRDD.from_numpy(ctx, data, chunk, valid=valid)
    return arr, data, valid


class TestCreation:
    def test_roundtrip(self, ctx):
        arr, data, valid = random_array(ctx)
        values, got_valid = arr.collect_dense()
        assert np.array_equal(got_valid, valid)
        assert np.allclose(values[valid], data[valid])

    def test_empty_chunks_not_materialized(self, ctx):
        data = np.zeros((8, 8))
        valid = np.zeros((8, 8), dtype=bool)
        valid[0, 0] = True
        arr = ArrayRDD.from_numpy(ctx, data, (4, 4), valid=valid)
        assert arr.num_chunks_materialized() == 1
        assert arr.meta.num_chunks == 4

    def test_nan_treated_as_null(self, ctx):
        data = np.array([[1.0, np.nan], [3.0, 4.0]])
        arr = ArrayRDD.from_numpy(ctx, data, (2, 2))
        assert arr.count_valid() == 3
        assert arr.get((0, 1)) is None

    def test_edge_chunks(self, ctx):
        # shape not divisible by chunk: padding cells must stay invalid
        data = np.arange(35.0).reshape(7, 5)
        arr = ArrayRDD.from_numpy(ctx, data, (4, 4))
        assert arr.count_valid() == 35
        values, valid = arr.collect_dense()
        assert valid.all()
        assert np.allclose(values, data)

    def test_valid_shape_mismatch(self, ctx):
        with pytest.raises(ShapeMismatchError):
            ArrayRDD.from_numpy(ctx, np.zeros((4, 4)), (2, 2),
                                valid=np.ones((4, 3), dtype=bool))

    def test_from_records(self, ctx):
        meta = ArrayMetadata((6, 6), (3, 3))
        records = [((i, j), float(i * 10 + j))
                   for i in range(6) for j in range(6) if (i + j) % 2 == 0]
        arr = array_rdd_from_records(ctx, records, meta)
        assert arr.count_valid() == len(records)
        assert arr.get((2, 2)) == 22.0
        assert arr.get((0, 1)) is None

    def test_generate_array_rdd(self, ctx):
        meta = ArrayMetadata((20,), (5,))

        def cells(i):
            return [((j,), float(j)) for j in range(i * 5, i * 5 + 5)]

        arr = generate_array_rdd(ctx, meta, cells, 4)
        assert arr.count_valid() == 20
        assert arr.sum() == sum(range(20))

    def test_3d(self, ctx):
        rng = np.random.default_rng(1)
        data = rng.random((10, 8, 6))
        arr = ArrayRDD.from_numpy(ctx, data, (4, 4, 3))
        values, valid = arr.collect_dense()
        assert valid.all()
        assert np.allclose(values, data)


class TestPointQueries:
    def test_get_valid(self, ctx):
        arr, data, valid = random_array(ctx, seed=2)
        i, j = map(int, np.argwhere(valid)[0])
        assert arr.get((i, j)) == pytest.approx(data[i, j])

    def test_get_invalid(self, ctx):
        arr, _data, valid = random_array(ctx, seed=3)
        i, j = map(int, np.argwhere(~valid)[0])
        assert arr.get((i, j)) is None

    def test_get_out_of_bounds(self, ctx):
        arr, _d, _v = random_array(ctx)
        with pytest.raises(Exception):
            arr.get((1000, 0))


class TestOperators:
    def test_map_values(self, ctx):
        arr, data, valid = random_array(ctx, seed=4)
        scaled = arr.map_values(lambda xs: xs * 10)
        values, got_valid = scaled.collect_dense()
        assert np.array_equal(got_valid, valid)
        assert np.allclose(values[valid], data[valid] * 10)

    def test_filter(self, ctx):
        arr, data, valid = random_array(ctx, density=0.8, seed=5)
        high = arr.filter(lambda xs: xs > 0.5)
        _values, got_valid = high.collect_dense()
        expected = valid & (np.where(valid, data, 0) > 0.5)
        assert np.array_equal(got_valid, expected)

    def test_filter_drops_empty_chunks(self, ctx):
        arr, _d, _v = random_array(ctx, density=1.0, seed=6)
        none_left = arr.filter(lambda xs: xs > 2.0)
        assert none_left.num_chunks_materialized() == 0
        assert none_left.count_valid() == 0

    def test_subarray(self, ctx):
        arr, data, valid = random_array(ctx, density=1.0, seed=7)
        sub = arr.subarray((5, 10), (20, 25))
        _values, got_valid = sub.collect_dense()
        expected = np.zeros_like(valid)
        expected[5:21, 10:26] = True
        assert np.array_equal(got_valid, expected)

    def test_subarray_prunes_chunks_by_id(self, ctx):
        arr, _d, _v = random_array(ctx, (64, 64), (16, 16),
                                   density=1.0, seed=8)
        sub = arr.subarray((0, 0), (15, 15))
        assert sub.num_chunks_materialized() == 1

    def test_combine_and(self, ctx):
        a, adata, avalid = random_array(ctx, density=0.5, seed=9)
        b, bdata, bvalid = random_array(ctx, density=0.5, seed=10)
        out = a.combine(b, np.add, how="and")
        values, got_valid = out.collect_dense()
        both = avalid & bvalid
        assert np.array_equal(got_valid, both)
        assert np.allclose(values[both], (adata + bdata)[both])

    def test_combine_or(self, ctx):
        a, adata, avalid = random_array(ctx, density=0.3, seed=11)
        b, bdata, bvalid = random_array(ctx, density=0.3, seed=12)
        out = a.combine(b, np.add, how="or")
        values, got_valid = out.collect_dense()
        either = avalid | bvalid
        expected = (np.where(avalid, adata, 0)
                    + np.where(bvalid, bdata, 0))
        assert np.array_equal(got_valid, either)
        assert np.allclose(values[either], expected[either])

    def test_combine_shape_mismatch(self, ctx):
        a, _d, _v = random_array(ctx, (40, 30))
        b, _d2, _v2 = random_array(ctx, (30, 40))
        with pytest.raises(ShapeMismatchError):
            a.combine(b, np.add)

    def test_combine_bad_how(self, ctx):
        a, _d, _v = random_array(ctx)
        with pytest.raises(ArrayError):
            a.combine(a, np.add, how="nand")


class TestAggregation:
    def test_scalar_aggregates(self, ctx):
        arr, data, valid = random_array(ctx, density=0.6, seed=13)
        masked = data[valid]
        assert arr.sum() == pytest.approx(masked.sum())
        assert arr.min() == pytest.approx(masked.min())
        assert arr.max() == pytest.approx(masked.max())
        assert arr.avg() == pytest.approx(masked.mean())

    def test_aggregate_empty(self, ctx):
        data = np.zeros((4, 4))
        arr = ArrayRDD.from_numpy(
            ctx, data, (2, 2), valid=np.zeros((4, 4), dtype=bool))
        assert arr.sum() == 0.0
        assert arr.min() is None
        assert arr.avg() is None

    def test_aggregate_by_one_axis(self, ctx):
        arr, data, valid = random_array(ctx, density=1.0, seed=14)
        by_row = arr.aggregate_by([0], "sum")
        values, got_valid = by_row.collect_dense()
        assert got_valid.all()
        assert np.allclose(values, data.sum(axis=1))

    def test_aggregate_by_named_axis(self, ctx):
        rng = np.random.default_rng(15)
        data = rng.random((6, 8))
        arr = ArrayRDD.from_numpy(ctx, data, (3, 4),
                                  dim_names=("lat", "lon"))
        by_lon = arr.aggregate_by(["lon"], "avg")
        values, got_valid = by_lon.collect_dense()
        assert got_valid.all()
        assert np.allclose(values, data.mean(axis=0))

    def test_aggregate_by_respects_validity(self, ctx):
        data = np.array([[1.0, 2.0], [3.0, 4.0]])
        valid = np.array([[True, False], [True, True]])
        arr = ArrayRDD.from_numpy(ctx, data, (1, 2), valid=valid)
        by_col = arr.aggregate_by([1], "sum")
        values, got_valid = by_col.collect_dense()
        assert got_valid.all()
        assert np.allclose(values, [4.0, 4.0])

    def test_aggregate_by_bad_dims(self, ctx):
        arr, _d, _v = random_array(ctx)
        with pytest.raises(ArrayError):
            arr.aggregate_by([])
        with pytest.raises(ArrayError):
            arr.aggregate_by([0, 0])

    def test_count_valid_and_memory(self, ctx):
        arr, _data, valid = random_array(ctx, seed=16)
        assert arr.count_valid() == int(valid.sum())
        assert arr.memory_bytes() > 0


class TestCaching:
    def test_cache_materialize(self, ctx):
        arr, _d, valid = random_array(ctx, seed=17)
        arr.materialize()
        before = ctx.metrics.snapshot()
        assert arr.count_valid() == int(valid.sum())
        delta = ctx.metrics.snapshot() - before
        assert delta.cache_hits > 0

    def test_unpersist(self, ctx):
        arr, _d, _v = random_array(ctx, seed=18)
        arr.materialize()
        arr.unpersist()
        assert ctx.cache.block_count() == 0
