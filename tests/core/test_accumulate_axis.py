"""Tests for the distributed Accumulator (accumulate_axis)."""

import numpy as np
import pytest

from repro.core import ArrayRDD
from repro.core.accumulate import accumulate_axis
from repro.engine import ClusterContext
from repro.errors import ArrayError


@pytest.fixture()
def ctx():
    return ClusterContext(num_executors=4, default_parallelism=4)


def reference_prefix(values, valid, axis, ufunc, identity):
    filled = np.where(valid, values, identity)
    return ufunc.accumulate(filled.astype(np.float64), axis=axis)


class TestAccumulateAxis:
    @pytest.mark.parametrize("mode", ["async", "sync"])
    @pytest.mark.parametrize("axis", [0, 1])
    def test_prefix_sum_matches_reference(self, ctx, mode, axis):
        rng = np.random.default_rng(0)
        values = rng.random((24, 30))
        valid = rng.random((24, 30)) < 0.7
        arr = ArrayRDD.from_numpy(ctx, values, (8, 10), valid=valid)
        out = accumulate_axis(arr, axis, "sum", mode=mode)
        got, got_valid = out.collect_dense(fill=0.0)
        expected = reference_prefix(values, valid, axis, np.add, 0.0)
        assert np.array_equal(got_valid, valid)
        assert np.allclose(got[valid], expected[valid])

    @pytest.mark.parametrize("op,ufunc,identity", [
        ("max", np.maximum, -np.inf),
        ("min", np.minimum, np.inf),
        ("prod", np.multiply, 1.0),
    ])
    def test_other_operators(self, ctx, op, ufunc, identity):
        rng = np.random.default_rng(1)
        values = rng.random((16, 12)) + 0.5
        arr = ArrayRDD.from_numpy(ctx, values, (4, 4))
        out = accumulate_axis(arr, 1, op)
        got, _valid = out.collect_dense()
        expected = reference_prefix(values, np.ones_like(values, bool),
                                    1, ufunc, identity)
        assert np.allclose(got, expected)

    def test_sync_and_async_agree(self, ctx):
        rng = np.random.default_rng(2)
        values = rng.random((20, 20))
        valid = rng.random((20, 20)) < 0.5
        arr = ArrayRDD.from_numpy(ctx, values, (5, 5), valid=valid)
        sync_out, sv = accumulate_axis(arr, 0, "sum",
                                       mode="sync").collect_dense(0.0)
        async_out, av = accumulate_axis(arr, 0, "sum",
                                        mode="async").collect_dense(0.0)
        assert np.array_equal(sv, av)
        assert np.allclose(sync_out[sv], async_out[av])

    def test_named_axis(self, ctx):
        rng = np.random.default_rng(3)
        values = rng.random((8, 6))
        arr = ArrayRDD.from_numpy(ctx, values, (4, 3),
                                  dim_names=("time", "sensor"))
        out = accumulate_axis(arr, "time", "sum")
        got, _v = out.collect_dense()
        assert np.allclose(got, np.cumsum(values, axis=0))

    def test_3d(self, ctx):
        rng = np.random.default_rng(4)
        values = rng.random((6, 8, 4))
        arr = ArrayRDD.from_numpy(ctx, values, (3, 4, 2))
        out = accumulate_axis(arr, 2, "sum")
        got, _v = out.collect_dense()
        assert np.allclose(got, np.cumsum(values, axis=2))

    def test_invalid_cells_pass_through(self, ctx):
        values = np.array([[1.0, 99.0, 2.0, 99.0, 4.0]])
        valid = np.array([[True, False, True, False, True]])
        arr = ArrayRDD.from_numpy(ctx, values, (1, 2), valid=valid)
        out = accumulate_axis(arr, 1, "sum")
        got, got_valid = out.collect_dense(fill=np.nan)
        assert np.array_equal(got_valid, valid)
        assert got[0, 0] == 1.0
        assert got[0, 2] == 3.0
        assert got[0, 4] == 7.0

    def test_sync_uses_more_jobs_than_async(self, ctx):
        rng = np.random.default_rng(5)
        values = rng.random((64, 8))
        arr = ArrayRDD.from_numpy(ctx, values, (8, 8)).materialize()
        before = ctx.metrics.snapshot()
        accumulate_axis(arr, 0, "sum", mode="sync").count_valid()
        sync_jobs = (ctx.metrics.snapshot() - before).jobs_run
        before = ctx.metrics.snapshot()
        accumulate_axis(arr, 0, "sum", mode="async").count_valid()
        async_jobs = (ctx.metrics.snapshot() - before).jobs_run
        assert sync_jobs > async_jobs

    def test_validation(self, ctx):
        arr = ArrayRDD.from_numpy(ctx, np.ones((4, 4)), (2, 2))
        with pytest.raises(ArrayError):
            accumulate_axis(arr, 5, "sum")
        with pytest.raises(ArrayError):
            accumulate_axis(arr, 0, "median")
        with pytest.raises(ArrayError):
            accumulate_axis(arr, 0, "sum", mode="turbo")

    def test_custom_op_pair(self, ctx):
        values = np.array([[1.0, 2.0, 3.0, 4.0]])
        arr = ArrayRDD.from_numpy(ctx, values, (1, 2))
        out = accumulate_axis(arr, 1, (np.add, 0.0))
        got, _v = out.collect_dense()
        assert np.allclose(got, [[1.0, 3.0, 6.0, 10.0]])
