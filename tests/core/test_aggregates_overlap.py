"""Tests for the Aggregator framework, Accumulator, and overlap/stencil."""

import numpy as np
import pytest

from repro.core import ArrayRDD
from repro.core.aggregates import (
    Accumulator,
    AvgAggregator,
    resolve_aggregator,
    scalar_aggregator,
)
from repro.core.overlap import expanded_chunks, mean_stencil, stencil
from repro.engine import ClusterContext
from repro.errors import ArrayError


@pytest.fixture()
def ctx():
    return ClusterContext(num_executors=4, default_parallelism=4)


class TestAggregatorFramework:
    def test_builtins_resolve(self):
        for name in ("sum", "count", "min", "max", "avg"):
            assert resolve_aggregator(name).name == name

    def test_unknown_name(self):
        with pytest.raises(ArrayError):
            resolve_aggregator("median")

    def test_bad_type(self):
        with pytest.raises(ArrayError):
            resolve_aggregator(42)

    def test_instance_passthrough(self):
        agg = AvgAggregator()
        assert resolve_aggregator(agg) is agg

    def test_four_function_contract(self):
        agg = resolve_aggregator("avg")
        state = agg.initialize()
        state = agg.accumulate(state, np.array([1.0, 2.0]))
        other = agg.accumulate(agg.initialize(), np.array([6.0]))
        merged = agg.merge(state, other)
        assert agg.evaluate(merged) == pytest.approx(3.0)

    def test_scalar_user_aggregator(self, ctx):
        # user-defined product aggregator built from scalar functions
        product = scalar_aggregator(
            "product",
            initialize=lambda: 1.0,
            accumulate_one=lambda state, v: state * v,
            merge=lambda a, b: a * b,
        )
        data = np.array([[2.0, 3.0], [4.0, 1.0]])
        arr = ArrayRDD.from_numpy(ctx, data, (1, 2))
        assert arr.aggregate(product) == pytest.approx(24.0)

    def test_min_max_merge_none(self):
        agg = resolve_aggregator("min")
        assert agg.merge(None, 3.0) == 3.0
        assert agg.merge(3.0, None) == 3.0
        agg = resolve_aggregator("max")
        assert agg.merge(None, None) is None


class TestAccumulator:
    def test_sync_prefix_sum(self):
        values = np.arange(12.0).reshape(3, 4)
        valid = np.ones((3, 4), dtype=bool)
        acc = Accumulator(np.add, 0.0)
        out = acc.run(values, valid, axis=1, chunk_interval=2, mode="sync")
        assert np.allclose(out, np.cumsum(values, axis=1))
        assert acc.num_sync_steps == 2

    def test_async_matches_sync_for_sum(self):
        rng = np.random.default_rng(0)
        values = rng.random((8, 10))
        valid = rng.random((8, 10)) < 0.7
        sync = Accumulator(np.add).run(values, valid, 0, 3, "sync")
        acc = Accumulator(np.add)
        async_out = acc.run(values, valid, 0, 3, "async")
        assert np.allclose(sync, async_out)
        assert acc.num_sync_steps == 2

    def test_sync_steps_grow_with_chunks(self):
        values = np.ones((1, 20))
        valid = np.ones((1, 20), dtype=bool)
        fine = Accumulator(np.add)
        fine.run(values, valid, 1, 2, "sync")
        coarse = Accumulator(np.add)
        coarse.run(values, valid, 1, 10, "sync")
        assert fine.num_sync_steps == 10
        assert coarse.num_sync_steps == 2

    def test_invalid_cells_pass_through(self):
        values = np.array([[1.0, 99.0, 2.0]])
        valid = np.array([[True, False, True]])
        out = Accumulator(np.add).run(values, valid, 1, 3, "sync")
        assert np.allclose(out[0], [1.0, 1.0, 3.0])

    def test_maximum_accumulation(self):
        values = np.array([[3.0, 1.0, 5.0, 2.0]])
        valid = np.ones((1, 4), dtype=bool)
        acc = Accumulator(np.maximum, -np.inf)
        out = acc.run(values, valid, 1, 2, "sync")
        assert np.allclose(out[0], [3.0, 3.0, 5.0, 5.0])

    def test_bad_inputs(self):
        acc = Accumulator()
        values = np.ones((2, 2))
        valid = np.ones((2, 2), dtype=bool)
        with pytest.raises(ArrayError):
            acc.run(values, valid, 5, 1)
        with pytest.raises(ArrayError):
            acc.run(values, valid, 0, 0)
        with pytest.raises(ArrayError):
            acc.run(values, valid, 0, 1, mode="turbo")
        with pytest.raises(ArrayError):
            acc.run(values, np.ones((2, 3), dtype=bool), 0, 1)


class TestOverlap:
    def test_expanded_chunks_carry_neighbour_cells(self, ctx):
        # a 2x2 chunk grid of distinct constants: each expanded chunk
        # must see its neighbours' values in the halo
        data = np.zeros((8, 8))
        data[:4, :4] = 1.0
        data[4:, :4] = 2.0
        data[:4, 4:] = 3.0
        data[4:, 4:] = 4.0
        arr = ArrayRDD.from_numpy(ctx, data, (4, 4))
        expanded = dict(expanded_chunks(arr, depth=1).collect())
        values, valid = expanded[0]  # top-left chunk (dim0 fastest)
        assert values.shape == (6, 6)
        core = values[1:5, 1:5]
        assert (core == 1.0).all()
        assert (values[5, 1:5] == 2.0).all()   # dim0 neighbour
        assert (values[1:5, 5] == 3.0).all()   # dim1 neighbour
        assert values[5, 5] == 4.0             # diagonal
        assert not valid[0, 0]                 # outside the array

    def test_stencil_identity(self, ctx):
        rng = np.random.default_rng(1)
        data = rng.random((16, 16))
        arr = ArrayRDD.from_numpy(ctx, data, (8, 8))
        core = lambda v, m, d: v[d[0]:-d[0], d[1]:-d[1]]  # noqa: E731
        out = stencil(arr, core, depth=2)
        values, valid = out.collect_dense()
        assert valid.all()
        assert np.allclose(values, data)

    def test_mean_stencil_matches_reference(self, ctx):
        rng = np.random.default_rng(2)
        data = rng.random((20, 20))
        arr = ArrayRDD.from_numpy(ctx, data, (5, 5))
        out = stencil(arr, mean_stencil(1), depth=1)
        values, valid = out.collect_dense()
        assert valid.all()
        # brute-force reference: mean over the clipped 3x3 window
        for i in (0, 7, 13, 19):
            for j in (0, 6, 12, 19):
                window = data[max(0, i - 1):i + 2, max(0, j - 1):j + 2]
                assert values[i, j] == pytest.approx(window.mean())

    def test_stencil_respects_validity(self, ctx):
        data = np.ones((8, 8))
        valid = np.ones((8, 8), dtype=bool)
        valid[0, :] = False
        arr = ArrayRDD.from_numpy(ctx, data, (4, 4), valid=valid)
        out = stencil(arr, mean_stencil(1), depth=1)
        _values, got_valid = out.collect_dense()
        assert np.array_equal(got_valid, valid)

    def test_stencil_shuffles_less_than_full_join(self, ctx):
        rng = np.random.default_rng(3)
        data = rng.random((64, 64))
        arr = ArrayRDD.from_numpy(ctx, data, (16, 16)).materialize()
        before = ctx.metrics.snapshot()
        stencil(arr, mean_stencil(1), depth=1).count_valid()
        halo_bytes = (ctx.metrics.snapshot() - before).shuffle_bytes
        # halo exchange must move far less than the whole array once
        whole_array_bytes = arr.memory_bytes()
        assert halo_bytes < whole_array_bytes / 2

    def test_depth_validation(self, ctx):
        arr = ArrayRDD.from_numpy(ctx, np.ones((8, 8)), (4, 4))
        with pytest.raises(ArrayError):
            expanded_chunks(arr, 0)
        with pytest.raises(ArrayError):
            expanded_chunks(arr, 5)

    def test_stencil_shape_check(self, ctx):
        from repro.errors import TaskFailure

        arr = ArrayRDD.from_numpy(ctx, np.ones((8, 8)), (4, 4))
        bad = lambda v, m, d: v  # noqa: E731  (returns expanded shape)
        with pytest.raises(TaskFailure) as excinfo:
            stencil(arr, bad, depth=1).count_valid()
        assert isinstance(excinfo.value.cause, ArrayError)
