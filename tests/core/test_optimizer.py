"""Correctness tests for the cost-based logical rewrite optimizer.

The contract: an optimized plan must be *byte-identical* — same chunk
IDs, same modes, same payload bytes, same bitmask words — to lowering
the recorded plan exactly as written (``repro.optimizer.disable()``),
across randomized operator chains and all three execution backends.
The rewrites only reorder/merge work; they never change what a chunk
contains.
"""

import numpy as np
import pytest

from repro import optimizer, plan
from repro.core import ArrayRDD
from repro.core.optimizer import lower_count_valid
from repro.engine import ClusterContext
from repro.matrix import SpangleMatrix


@pytest.fixture()
def ctx():
    return ClusterContext(num_executors=4, default_parallelism=4)


def make_array(ctx, shape=(40, 40), chunk=(10, 10), density=0.4, seed=0):
    rng = np.random.default_rng(seed)
    data = rng.random(shape)
    valid = rng.random(shape) < density
    return ArrayRDD.from_numpy(ctx, data, chunk, valid=valid)


def assert_byte_identical(got_arr, want_arr):
    got_chunks = dict(got_arr.rdd.collect())
    want_chunks = dict(want_arr.rdd.collect())
    assert got_chunks.keys() == want_chunks.keys()
    for chunk_id, got in got_chunks.items():
        want = want_chunks[chunk_id]
        assert got.mode is want.mode, chunk_id
        assert got.num_cells == want.num_cells
        assert got.payload.dtype == want.payload.dtype
        assert got.payload.tobytes() == want.payload.tobytes(), chunk_id
        assert np.array_equal(got.flat_mask().words,
                              want.flat_mask().words), chunk_id


def random_chain(meta, rng):
    """2-8 random ops mixing chunk-local work, shuffles, and subarrays."""
    ops = []
    for _ in range(rng.integers(2, 9)):
        kind = rng.choice(
            ["filter", "map", "subarray", "scalar", "shuffle", "repack"])
        if kind == "filter":
            modulus = int(rng.integers(3, 6))
            ops.append(lambda a, m=modulus: a.filter(
                lambda xs: (np.floor(np.abs(xs) * 1e5) % m) > 0))
        elif kind == "map":
            shift = float(rng.uniform(-1, 1))
            ops.append(lambda a, s=shift: a.map_values(
                lambda xs: xs * 0.5 + s))
        elif kind == "subarray":
            lo = [int(rng.integers(0, n // 2)) for n in meta.shape]
            hi = [int(rng.integers(n // 2, n)) for n in meta.shape]
            ops.append(lambda a, lo=tuple(lo), hi=tuple(hi):
                       a.subarray(lo, hi))
        elif kind == "scalar":
            scalar = float(rng.uniform(0.5, 2.0))
            apply = rng.choice([
                lambda a, s=scalar: a * s,
                lambda a, s=scalar: s + a,
                lambda a, s=scalar: s - a,
                lambda a, s=scalar: a / s,
            ])
            ops.append(apply)
        elif kind == "shuffle":
            parts = int(rng.integers(2, 7))
            ops.append(lambda a, p=parts: a.repartition(p))
        else:
            ops.append(lambda a: a.repack())
    return ops


def apply_chain(arr, ops):
    for op in ops:
        arr = op(arr)
    return arr


class TestRandomizedChains:
    @pytest.mark.parametrize("seed", range(8))
    def test_optimized_matches_as_written(self, ctx, seed):
        arr = make_array(ctx, seed=seed)
        ops = random_chain(arr.meta, np.random.default_rng(1000 + seed))
        optimized = apply_chain(arr, ops)
        with optimizer.disable():
            as_written = apply_chain(arr, ops)
            want = dict(as_written.rdd.collect())
        got_arr = apply_chain(arr, ops)
        got = dict(got_arr.rdd.collect())
        assert got.keys() == want.keys()
        for chunk_id, chunk in got.items():
            assert chunk.payload.tobytes() == \
                want[chunk_id].payload.tobytes(), chunk_id
            assert np.array_equal(chunk.flat_mask().words,
                                  want[chunk_id].flat_mask().words)
        # the first plan was recorded before disable(): lowering it now
        # (optimizer back on) must agree too
        assert dict(optimized.rdd.collect()).keys() == want.keys()

    @pytest.mark.parametrize("kwargs", [
        pytest.param({}, id="serial"),
        pytest.param({"use_threads": True}, id="thread"),
        pytest.param({"backend": "process"}, id="process"),
    ])
    def test_byte_identity_across_backends(self, kwargs):
        with ClusterContext(num_executors=2, **kwargs) as ctx:
            arr = make_array(ctx, shape=(24, 24), chunk=(8, 8), seed=3)
            ops = random_chain(arr.meta, np.random.default_rng(42))
            got = apply_chain(arr, ops)
            with optimizer.disable():
                want = apply_chain(arr, ops)
                assert_byte_identical(got, want)

    @pytest.mark.parametrize("density", [0.9, 0.2, 0.002])
    def test_densities(self, ctx, density):
        arr = make_array(ctx, shape=(64, 64), chunk=(32, 32),
                         density=density, seed=7)
        chain = (arr * 2.0 + 1.0).repartition(3).subarray((5, 5), (50, 50))
        with optimizer.disable():
            want = (arr * 2.0 + 1.0).repartition(3) \
                .subarray((5, 5), (50, 50))
            assert_byte_identical(chain, want)


class TestSubarrayAfterShuffle:
    def test_pushdown_is_byte_identical(self, ctx):
        arr = make_array(ctx, shape=(48, 48), chunk=(12, 12), seed=5)
        got = arr.repartition(8).subarray((2, 2), (13, 13))
        with optimizer.disable():
            want = arr.repartition(8).subarray((2, 2), (13, 13))
            assert_byte_identical(got, want)

    def test_rule_fires_and_prunes(self, ctx):
        arr = make_array(ctx, shape=(48, 48), chunk=(12, 12), seed=5)
        chain = arr.repartition(8).subarray((2, 2), (13, 13))
        text = chain.explain(optimized=True)
        assert "push_below_shuffle" in text
        assert "chunks pruned" in text
        before = ctx.metrics.snapshot()
        chain.rdd.count()
        after = ctx.metrics.snapshot()
        assert after.optimizer_rules_fired > before.optimizer_rules_fired
        assert after.optimizer_chunks_pruned > before.optimizer_chunks_pruned

    def test_shuffle_moves_fewer_bytes(self, ctx):
        arr = make_array(ctx, shape=(48, 48), chunk=(12, 12), seed=5)
        before = ctx.metrics.snapshot()
        arr.repartition(8).subarray((2, 2), (13, 13)).rdd.count()
        mid = ctx.metrics.snapshot()
        with optimizer.disable():
            arr.repartition(8).subarray((2, 2), (13, 13)).rdd.count()
        after = ctx.metrics.snapshot()
        optimized_bytes = mid.shuffle_bytes - before.shuffle_bytes
        as_written_bytes = after.shuffle_bytes - mid.shuffle_bytes
        assert optimized_bytes < as_written_bytes


class TestMaskOnlyConsumers:
    def test_count_valid_skips_value_work(self, ctx):
        arr = make_array(ctx, shape=(40, 40), chunk=(10, 10), seed=11)
        chain = (arr * 3.0).map_values(lambda xs: xs + 1) \
            .subarray((3, 3), (18, 18))
        with optimizer.disable():
            want = (arr * 3.0).map_values(lambda xs: xs + 1) \
                .subarray((3, 3), (18, 18)).count_valid()
        assert chain.count_valid() == want

    def test_mask_only_count_prunes_chunks(self, ctx):
        arr = make_array(ctx, shape=(40, 40), chunk=(10, 10), seed=11)
        before = ctx.metrics.snapshot()
        (arr * 3.0).subarray((0, 0), (9, 9)).count_valid()
        after = ctx.metrics.snapshot()
        # 16 chunks, the box covers 1: 15 pruned by the mask-only path
        assert after.optimizer_chunks_pruned - \
            before.optimizer_chunks_pruned >= 15

    def test_filter_blocks_mask_only_path(self, ctx):
        # a filter changes validity, so the shortcut must not engage
        arr = make_array(ctx, seed=13)
        node = arr.filter(lambda xs: xs > 0.5)._logical
        assert lower_count_valid(node, ctx) is None
        with optimizer.disable():
            want = arr.filter(lambda xs: xs > 0.5).count_valid()
        assert arr.filter(lambda xs: xs > 0.5).count_valid() == want

    def test_nested_subarrays(self, ctx):
        arr = make_array(ctx, seed=17)
        got = arr.subarray((0, 0), (25, 25)).subarray((4, 4), (30, 30))
        with optimizer.disable():
            want = arr.subarray((0, 0), (25, 25)) \
                .subarray((4, 4), (30, 30))
            assert got.count_valid() == want.count_valid()
            assert_byte_identical(got, want)


class TestElementwisePushdown:
    def test_subarray_into_both_operands(self, ctx):
        a = make_array(ctx, seed=21)
        b = make_array(ctx, seed=22)
        got = a.combine(b, np.add, how="or", fill=0.0) \
            .subarray((2, 2), (17, 17))
        with optimizer.disable():
            want = a.combine(b, np.add, how="or", fill=0.0) \
                .subarray((2, 2), (17, 17))
            assert_byte_identical(got, want)
        assert "subarray_into_elementwise" in got.explain(optimized=True)

    def test_and_join(self, ctx):
        a = make_array(ctx, seed=23)
        b = make_array(ctx, seed=24)
        got = a.combine(b, np.multiply, how="and") \
            .subarray((5, 5), (30, 30))
        with optimizer.disable():
            want = a.combine(b, np.multiply, how="and") \
                .subarray((5, 5), (30, 30))
            assert_byte_identical(got, want)


class TestMatmulPushdown:
    def make_matrices(self, ctx):
        rng = np.random.default_rng(31)
        a = rng.random((24, 16)) * (rng.random((24, 16)) < 0.5)
        b = rng.random((16, 24)) * (rng.random((16, 24)) < 0.5)
        ma = SpangleMatrix.from_numpy(ctx, a, (8, 8))
        mb = SpangleMatrix.from_numpy(ctx, b, (8, 8))
        return ma, mb

    def test_restricted_product_is_byte_identical(self, ctx):
        ma, mb = self.make_matrices(ctx)
        got = ma.multiply(mb).array.subarray((0, 0), (7, 7))
        with optimizer.disable():
            ma2, mb2 = self.make_matrices(ctx)
            want = ma2.multiply(mb2).array.subarray((0, 0), (7, 7))
            assert_byte_identical(got, want)

    def test_unrestricted_product_unchanged(self, ctx):
        ma, mb = self.make_matrices(ctx)
        got = ma.multiply(mb)
        with optimizer.disable():
            ma2, mb2 = self.make_matrices(ctx)
            want = ma2.multiply(mb2)
            assert_byte_identical(got.array, want.array)


class TestEscapeHatchAndExplain:
    def test_disable_is_restored(self, ctx):
        assert optimizer.enabled()
        with optimizer.disable():
            assert not optimizer.enabled()
            with optimizer.enable():
                assert optimizer.enabled()
            assert not optimizer.enabled()
        assert optimizer.enabled()

    def test_disable_lowers_as_written(self, ctx):
        arr = make_array(ctx, seed=41)
        chain = arr.repartition(4).subarray((0, 0), (9, 9))
        with optimizer.disable():
            text = chain.explain(optimized=True)
        assert "0 rules fired: none" in text
        assert chain.explain(optimized=True).count("push_below_shuffle")

    def test_explain_sections(self, ctx):
        arr = make_array(ctx, seed=43)
        chain = (arr * 2.0 + 1.0).subarray((0, 0), (19, 19))
        text = chain.explain(optimized=True)
        assert "Logical plan:" in text
        assert "Optimized plan" in text
        assert "Physical plan:" in text
        assert "fold_scalars" in text
        plain = chain.explain()
        assert "Optimized plan" not in plain

    def test_explain_does_not_compile(self, ctx):
        arr = make_array(ctx, seed=47)
        chain = arr.repartition(3).subarray((0, 0), (9, 9))
        chain.explain(optimized=True)
        assert chain._compiled is None

    def test_mask_rdd_explain(self, ctx):
        from repro.core import MaskRDD

        arr = make_array(ctx, seed=53)
        mask = MaskRDD.from_array_rdd(arr).subarray((0, 0), (19, 19))
        text = mask.explain()
        assert "subarray[(0, 0)..(19, 19)]" in text
        assert "Physical plan:" in text

    def test_no_beneficial_rewrite_leaves_plan_alone(self, ctx):
        arr = make_array(ctx, seed=59)
        chain = arr.map_values(lambda xs: xs * 2)
        text = chain.explain(optimized=True)
        assert "0 rules fired: none" in text


class TestScalarFolding:
    def test_long_scalar_chain_folds_and_matches(self, ctx):
        arr = make_array(ctx, seed=61)
        got = ((arr * 2.0 + 1.0) / 3.0 - 0.5) * 1.5
        with optimizer.disable():
            want = ((arr * 2.0 + 1.0) / 3.0 - 0.5) * 1.5
            assert_byte_identical(got, want)
        assert "fold_scalars" in got.explain(optimized=True)

    def test_fold_runs_single_kernel(self, ctx):
        arr = make_array(ctx, seed=67)
        text = (arr * 2.0 + 1.0 - 3.0).explain(optimized=True)
        assert "fold[mul+add+sub]" in text
