"""Fusion-equivalence tests for the ChunkPlan kernel layer.

The contract under test: a chain of chunk-local operators compiled into
one fused ``map_partitions`` pass must be *byte-identical* — same chunk
IDs, same modes, same payload bytes, same bitmask words — to running
the original eager per-chunk path (``repro.plan.disable_fusion()``),
across dense, sparse, and super-sparse inputs.
"""

import numpy as np
import pytest

from repro import plan
from repro.bitmask import HierarchicalBitmask
from repro.core import ArrayRDD, ChunkMode, SpangleDataset
from repro.engine import ClusterContext
from repro.engine.explain import fused_pipelines, stage_plan


@pytest.fixture()
def ctx():
    return ClusterContext(num_executors=4, default_parallelism=4)


#: (label, expected mode, shape, chunk shape, density) — densities sit
#: on the three sides of the mode policy (0.5 and 1/256 thresholds)
MODE_CASES = [
    ("dense", ChunkMode.DENSE, (40, 40), (16, 16), 0.9),
    ("sparse", ChunkMode.SPARSE, (40, 40), (16, 16), 0.2),
    ("super_sparse", ChunkMode.SUPER_SPARSE, (64, 64), (32, 32), 0.002),
]


def make_array(ctx, shape, chunk, density, seed):
    rng = np.random.default_rng(seed)
    data = rng.random(shape)
    valid = rng.random(shape) < density
    return ArrayRDD.from_numpy(ctx, data, chunk, valid=valid)


def random_chain(meta, rng):
    """A random chain of 1-6 mixed chunk-local operators.

    Predicates are scale-free (they look at value digits, not
    magnitudes) so they keep a stable fraction of cells no matter how
    earlier scalar ops shifted the values.
    """
    ops = []
    for _ in range(rng.integers(1, 7)):
        kind = rng.choice(["filter", "map", "subarray", "scalar"])
        if kind == "filter":
            modulus = int(rng.integers(3, 6))
            ops.append(("filter", lambda a, m=modulus: a.filter(
                lambda xs: (np.floor(np.abs(xs) * 1e5) % m) > 0)))
        elif kind == "map":
            shift = float(rng.uniform(-1, 1))
            ops.append(("map", lambda a, s=shift: a.map_values(
                lambda xs: xs * 0.5 + s)))
        elif kind == "subarray":
            lo = [int(rng.integers(0, n // 2)) for n in meta.shape]
            hi = [int(rng.integers(n // 2, n)) for n in meta.shape]
            ops.append(("subarray", lambda a, lo=tuple(lo), hi=tuple(hi):
                        a.subarray(lo, hi)))
        else:
            scalar = float(rng.uniform(0.5, 2.0))
            dunder = rng.choice(["mul", "radd", "rsub", "div"])
            apply = {
                "mul": lambda a, s=scalar: a * s,
                "radd": lambda a, s=scalar: s + a,
                "rsub": lambda a, s=scalar: s - a,
                "div": lambda a, s=scalar: a / s,
            }[dunder]
            ops.append((f"scalar_{dunder}", apply))
    return ops


def assert_byte_identical(fused, eager):
    fused_chunks = dict(fused.rdd.collect())
    eager_chunks = dict(eager.rdd.collect())
    assert fused_chunks.keys() == eager_chunks.keys()
    for chunk_id, got in fused_chunks.items():
        want = eager_chunks[chunk_id]
        assert got.mode is want.mode, chunk_id
        assert got.num_cells == want.num_cells
        assert type(got.mask) is type(want.mask)
        assert got.payload.dtype == want.payload.dtype
        assert got.payload.tobytes() == want.payload.tobytes(), chunk_id
        assert np.array_equal(got.flat_mask().words,
                              want.flat_mask().words), chunk_id


class TestRandomizedEquivalence:
    @pytest.mark.parametrize(
        "label,mode,shape,chunk,density", MODE_CASES,
        ids=[case[0] for case in MODE_CASES])
    @pytest.mark.parametrize("seed", range(8))
    def test_chain_matches_eager(self, ctx, label, mode, shape, chunk,
                                 density, seed):
        arr = make_array(ctx, shape, chunk, density, seed=seed)
        modes = {c.mode for _, c in arr.rdd.collect()}
        assert mode in modes  # the input really exercises this mode

        rng = np.random.default_rng(1000 + seed)
        ops = random_chain(arr.meta, rng)

        fused = arr
        for _name, apply in ops:
            fused = apply(fused)
        with plan.disable_fusion():
            eager = arr
            for _name, apply in ops:
                eager = apply(eager)

        fused_values, fused_valid = fused.collect_dense()
        eager_values, eager_valid = eager.collect_dense()
        assert np.array_equal(fused_valid, eager_valid)
        assert np.array_equal(fused_values, eager_values, equal_nan=True)
        assert fused.count_valid() == eager.count_valid()
        assert_byte_identical(fused, eager)

    def test_chain_records_no_more_tasks_than_eager(self, ctx):
        arr = make_array(ctx, (40, 40), (16, 16), 0.3, seed=3)
        arr.materialize()

        def chain(a):
            return (a.subarray((2, 2), (37, 37))
                     .filter(lambda xs: xs > 0.1)
                     .map_values(np.sqrt) * 2.0)

        before = ctx.metrics.snapshot()
        fused_count = chain(arr).count_valid()
        fused_delta = ctx.metrics.snapshot() - before

        with plan.disable_fusion():
            before = ctx.metrics.snapshot()
            eager_count = chain(arr).count_valid()
            eager_delta = ctx.metrics.snapshot() - before

        assert fused_count == eager_count
        # the fused chain is one narrow pass: a single stage, one task
        # per partition, and never more tasks than the eager chain
        assert fused_delta.stages_run == 1
        assert fused_delta.tasks_launched == arr.rdd.num_partitions
        assert fused_delta.tasks_launched <= eager_delta.tasks_launched
        # the new fusion counters fire only on the fused path
        assert fused_delta.kernels_fused == 4
        assert fused_delta.fused_chunks_avoided > 0
        assert eager_delta.kernels_fused == 0
        assert eager_delta.fused_chunks_avoided == 0


class TestPlanMechanics:
    def test_fused_label_in_stage_plan(self, ctx):
        arr = make_array(ctx, (40, 40), (16, 16), 0.3, seed=0)
        out = (arr.filter(lambda xs: xs > 0.1)
                  .map_values(np.sqrt)
                  .subarray((0, 0), (31, 31)))
        assert out.rdd.name == "fused[filter→map→mask_and]"
        assert fused_pipelines(out.rdd) == ["fused[filter→map→mask_and]"]
        # one narrow stage, one fused hop over the base RDD
        plan_stages = stage_plan(out.rdd)
        assert len(plan_stages) == 1
        assert list(out.rdd.dependencies) == [arr.rdd]

    def test_plan_append_runs_no_job(self, ctx):
        arr = make_array(ctx, (40, 40), (16, 16), 0.3, seed=0)
        before = ctx.metrics.snapshot()
        out = arr.filter(lambda xs: xs > 0.5).map_values(np.sqrt) * 3.0
        delta = ctx.metrics.snapshot() - before
        assert delta.jobs_run == 0
        assert out.count_valid() >= 0  # the action actually runs

    def test_cache_collapses_plan(self, ctx):
        arr = make_array(ctx, (40, 40), (16, 16), 0.3, seed=0)
        out = arr.filter(lambda xs: xs > 0.2).map_values(np.sqrt)
        out.materialize()
        before = ctx.metrics.snapshot()
        count = out.count_valid()
        delta = ctx.metrics.snapshot() - before
        assert count > 0
        assert delta.cache_hits > 0   # the fused result was cached
        # operators after the barrier start a fresh plan on the
        # cached RDD instead of re-running the collapsed kernels
        deeper = out * 2.0
        assert deeper.rdd.name == "scalar_mul"

    def test_disable_fusion_is_restored(self, ctx):
        assert plan.fusion_enabled()
        with plan.disable_fusion():
            assert not plan.fusion_enabled()
        assert plan.fusion_enabled()

    def test_combine_keeps_partitioner(self, ctx):
        a = make_array(ctx, (40, 40), (16, 16), 0.5, seed=1)
        b = make_array(ctx, (40, 40), (16, 16), 0.5, seed=2)
        for toggle in (plan.enable_fusion, plan.disable_fusion):
            with toggle():
                combined = a.combine(b, np.add, how="and")
                assert combined.rdd.partitioner is not None
                before = ctx.metrics.snapshot()
                combined.combine(a, np.add, how="and").count_valid()
                delta = ctx.metrics.snapshot() - before
                assert delta.shuffles_performed == 0

    def test_combine_drops_empty_chunks(self, ctx):
        a = make_array(ctx, (40, 40), (16, 16), 0.4, seed=1)
        diff = a.combine(a, np.subtract, how="or")  # all zeros
        survivors = diff.filter(lambda xs: xs != 0)
        assert survivors.num_chunks_materialized() == 0


class TestReflectedDunders:
    @pytest.mark.parametrize("expr", [
        lambda a: 2.0 / a,
        lambda a: a ** 2,
        lambda a: 2.0 ** a,
    ], ids=["rtruediv", "pow", "rpow"])
    def test_matches_numpy_and_eager(self, ctx, expr):
        arr = make_array(ctx, (40, 40), (16, 16), 0.4, seed=5)
        fused = expr(arr)
        assert fused.rdd.name.startswith("scalar_")
        with plan.disable_fusion():
            eager = expr(arr)
        assert_byte_identical(fused, eager)
        base_values, base_valid = arr.collect_dense(fill=1.0)
        got_values, got_valid = fused.collect_dense(fill=1.0)
        assert np.array_equal(base_valid, got_valid)
        want = expr(base_values[base_valid])
        assert np.allclose(got_values[got_valid], want)

    def test_pow_between_arrays_uses_combine(self, ctx):
        a = make_array(ctx, (40, 40), (16, 16), 0.5, seed=1)
        b = make_array(ctx, (40, 40), (16, 16), 0.5, seed=2)
        out = a ** b
        values, valid = out.collect_dense()
        av, avalid = a.collect_dense()
        bv, bvalid = b.collect_dense()
        assert np.array_equal(valid, avalid & bvalid)
        assert np.allclose(values[valid], av[valid] ** bv[valid])


class TestMaskAndDatasetFusion:
    def test_mask_apply_fuses_with_downstream_ops(self, ctx):
        rng = np.random.default_rng(9)
        shape, chunk = (40, 40), (16, 16)
        temp = ArrayRDD.from_numpy(
            ctx, rng.random(shape), chunk,
            valid=rng.random(shape) < 0.6)
        salt = ArrayRDD.from_numpy(
            ctx, rng.random(shape), chunk,
            valid=rng.random(shape) < 0.6)
        ds = SpangleDataset({"temp": temp, "salt": salt})
        restricted = ds.subarray((4, 4), (35, 35))

        fused = restricted.evaluate("salt").map_values(np.sqrt)
        assert fused.rdd.name == "fused[apply_mask→drop_empty→map]"
        with plan.disable_fusion():
            eager = restricted.evaluate("salt").map_values(np.sqrt)
        assert_byte_identical(fused, eager)

    def test_dataset_lazy_eager_agree_under_fusion(self, ctx):
        shape, chunk = (40, 40), (16, 16)

        def build(use_mask_rdd):
            rng = np.random.default_rng(11)
            temp = ArrayRDD.from_numpy(
                ctx, rng.random(shape), chunk,
                valid=np.ones(shape, dtype=bool))
            salt = ArrayRDD.from_numpy(
                ctx, rng.random(shape), chunk,
                valid=rng.random(shape) < 0.7)
            return SpangleDataset({"temp": temp, "salt": salt},
                                  use_mask_rdd=use_mask_rdd)

        lazy = build(True)
        eager = build(False)
        lazy_q = lazy.filter("salt", lambda xs: xs > 0.3) \
                     .subarray((2, 2), (30, 30))
        eager_q = eager.filter("salt", lambda xs: xs > 0.3) \
                       .subarray((2, 2), (30, 30))
        for attr in ("temp", "salt"):
            lv, lm = lazy_q.evaluate(attr).collect_dense()
            ev, em = eager_q.evaluate(attr).collect_dense()
            assert np.array_equal(lm, em)
            assert np.array_equal(lv, ev, equal_nan=True)


class TestSuperSparseEncoding:
    def test_fused_chain_emits_hierarchical_masks(self, ctx):
        from repro.core.chunk import choose_mode

        arr = make_array(ctx, (64, 64), (32, 32), 0.002, seed=2)
        out = arr.map_values(lambda xs: xs + 1.0) \
                 .filter(lambda xs: xs > 0)
        chunks = dict(out.rdd.collect())
        assert chunks, "chain should keep some cells"
        # the fused encode re-applies the density policy per chunk...
        for chunk in chunks.values():
            assert chunk.mode is choose_mode(chunk.density)
        # ...and the thinnest chunks really get hierarchical masks
        super_sparse = [c for c in chunks.values()
                        if c.mode is ChunkMode.SUPER_SPARSE]
        assert super_sparse
        for chunk in super_sparse:
            assert isinstance(chunk.mask, HierarchicalBitmask)
