"""Tests for rechunk, axis permutation, and window aggregation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ArrayRDD
from repro.core.reshape import permute_axes, rechunk
from repro.core.windows import regrid, window_aggregate, window_counts
from repro.engine import ClusterContext
from repro.errors import ArrayError, MetadataError


@pytest.fixture()
def ctx():
    return ClusterContext(num_executors=4, default_parallelism=4)


def random_array(ctx, shape=(30, 40), chunk=(8, 16), density=0.5,
                 seed=0):
    rng = np.random.default_rng(seed)
    data = rng.random(shape)
    valid = rng.random(shape) < density
    return ArrayRDD.from_numpy(ctx, data, chunk, valid=valid), data, valid


class TestRechunk:
    def test_preserves_contents(self, ctx):
        arr, data, valid = random_array(ctx)
        out = rechunk(arr, (16, 8))
        values, got_valid = out.collect_dense()
        assert np.array_equal(got_valid, valid)
        assert np.allclose(values[valid], data[valid])
        assert out.meta.chunk_shape == (16, 8)

    def test_same_shape_is_noop(self, ctx):
        arr, _d, _v = random_array(ctx)
        assert rechunk(arr, arr.meta.chunk_shape) is arr

    def test_changes_chunk_count(self, ctx):
        arr, _d, _v = random_array(ctx, shape=(64, 64), chunk=(8, 8),
                                   density=1.0)
        assert arr.meta.num_chunks == 64
        big = rechunk(arr, (32, 32))
        assert big.meta.num_chunks == 4
        assert big.num_chunks_materialized() == 4

    def test_arity_check(self, ctx):
        arr, _d, _v = random_array(ctx)
        with pytest.raises(MetadataError):
            rechunk(arr, (8,))

    def test_memory_tracks_mode_change(self, ctx):
        # hyper-sparse data: many small chunks (per-chunk mask overhead)
        # vs few large sparse chunks
        arr, _d, _v = random_array(ctx, shape=(128, 128), chunk=(8, 8),
                                   density=0.002, seed=3)
        coarse = rechunk(arr, (64, 64))
        assert coarse.count_valid() == arr.count_valid()

    def test_preserves_starts_and_names(self, ctx):
        rng = np.random.default_rng(1)
        arr = ArrayRDD.from_numpy(ctx, rng.random((12, 12)), (4, 4),
                                  starts=(100, 200),
                                  dim_names=("lat", "lon"))
        out = rechunk(arr, (6, 6))
        assert out.meta.starts == (100, 200)
        assert out.meta.dim_names == ("lat", "lon")
        assert out.get((101, 203)) == pytest.approx(arr.get((101, 203)))


class TestPermuteAxes:
    def test_transpose_2d(self, ctx):
        arr, data, valid = random_array(ctx, seed=2)
        out = permute_axes(arr, (1, 0))
        values, got_valid = out.collect_dense()
        assert out.meta.shape == (40, 30)
        assert np.array_equal(got_valid, valid.T)
        assert np.allclose(values[valid.T], data.T[valid.T])

    def test_permutation_3d(self, ctx):
        rng = np.random.default_rng(3)
        data = rng.random((6, 8, 10))
        arr = ArrayRDD.from_numpy(ctx, data, (3, 4, 5),
                                  dim_names=("a", "b", "c"))
        out = permute_axes(arr, (2, 0, 1))
        values, got_valid = out.collect_dense()
        assert out.meta.shape == (10, 6, 8)
        assert out.meta.dim_names == ("c", "a", "b")
        assert got_valid.all()
        assert np.allclose(values, np.transpose(data, (2, 0, 1)))

    def test_double_transpose_roundtrip(self, ctx):
        arr, data, valid = random_array(ctx, seed=4)
        back = permute_axes(permute_axes(arr, (1, 0)), (1, 0))
        values, got_valid = back.collect_dense()
        assert np.array_equal(got_valid, valid)
        assert np.allclose(values[valid], data[valid])

    def test_invalid_permutation(self, ctx):
        arr, _d, _v = random_array(ctx)
        with pytest.raises(ArrayError):
            permute_axes(arr, (0, 0))
        with pytest.raises(ArrayError):
            permute_axes(arr, (0, 1, 2))


class TestWindowAggregate:
    def test_regrid_matches_numpy(self, ctx):
        rng = np.random.default_rng(5)
        data = rng.random((24, 36))
        arr = ArrayRDD.from_numpy(ctx, data, (8, 12))
        out = regrid(arr, (4, 6))
        values, valid = out.collect_dense()
        assert out.meta.shape == (6, 6)
        assert valid.all()
        reference = data.reshape(6, 4, 6, 6).mean(axis=(1, 3))
        assert np.allclose(values, reference)

    def test_counts(self, ctx):
        arr, _data, valid = random_array(ctx, shape=(32, 32),
                                         chunk=(8, 8), density=0.3,
                                         seed=6)
        out = window_counts(arr, (16, 16))
        values, got_valid = out.collect_dense()
        for wr in range(2):
            for wc in range(2):
                expected = int(valid[wr * 16:(wr + 1) * 16,
                                     wc * 16:(wc + 1) * 16].sum())
                if expected:
                    assert values[wr, wc] == expected
                else:
                    assert not got_valid[wr, wc]

    def test_windows_straddling_chunks(self, ctx):
        # window 12 over chunk 8: every window spans chunk boundaries
        rng = np.random.default_rng(7)
        data = rng.random((24, 24))
        arr = ArrayRDD.from_numpy(ctx, data, (8, 8))
        out = regrid(arr, (12, 12))
        values, _valid = out.collect_dense()
        reference = data.reshape(2, 12, 2, 12).mean(axis=(1, 3))
        assert np.allclose(values, reference)

    def test_partial_edge_windows(self, ctx):
        data = np.arange(25.0).reshape(5, 5)
        arr = ArrayRDD.from_numpy(ctx, data, (5, 5))
        out = window_aggregate(arr, (4, 4), "sum")
        values, valid = out.collect_dense()
        assert out.meta.shape == (2, 2)
        assert valid.all()
        assert values[0, 0] == data[:4, :4].sum()
        assert values[1, 1] == data[4:, 4:].sum()

    def test_pass_through_axis(self, ctx):
        rng = np.random.default_rng(8)
        data = rng.random((8, 6))
        arr = ArrayRDD.from_numpy(ctx, data, (4, 3))
        out = window_aggregate(arr, (8, 1), "max")
        values, valid = out.collect_dense()
        assert out.meta.shape == (1, 6)
        assert np.allclose(values[0], data.max(axis=0))

    def test_respects_validity(self, ctx):
        data = np.ones((4, 4))
        valid = np.zeros((4, 4), dtype=bool)
        valid[0, 0] = True
        arr = ArrayRDD.from_numpy(ctx, data, (2, 2), valid=valid)
        out = window_counts(arr, (2, 2))
        values, got_valid = out.collect_dense()
        assert got_valid.sum() == 1
        assert values[0, 0] == 1

    def test_validation(self, ctx):
        arr, _d, _v = random_array(ctx)
        with pytest.raises(ArrayError):
            window_aggregate(arr, (4,), "avg")
        with pytest.raises(ArrayError):
            window_aggregate(arr, (0, 4), "avg")

    def test_min_aggregator(self, ctx):
        rng = np.random.default_rng(9)
        data = rng.random((16, 16)) + 1
        arr = ArrayRDD.from_numpy(ctx, data, (4, 4))
        out = window_aggregate(arr, (8, 8), "min")
        values, _valid = out.collect_dense()
        reference = data.reshape(2, 8, 2, 8).min(axis=(1, 3))
        assert np.allclose(values, reference)


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(4, 20),
    cols=st.integers(4, 20),
    chunk_r=st.integers(2, 6),
    chunk_c=st.integers(2, 6),
    new_r=st.integers(2, 9),
    new_c=st.integers(2, 9),
    seed=st.integers(0, 100),
)
def test_rechunk_roundtrip_property(rows, cols, chunk_r, chunk_c,
                                    new_r, new_c, seed):
    ctx = ClusterContext(num_executors=2, default_parallelism=2)
    rng = np.random.default_rng(seed)
    data = rng.random((rows, cols))
    valid = rng.random((rows, cols)) < 0.5
    arr = ArrayRDD.from_numpy(ctx, data, (chunk_r, chunk_c), valid=valid)
    out = rechunk(arr, (new_r, new_c))
    values, got_valid = out.collect_dense()
    assert np.array_equal(got_valid, valid)
    assert np.allclose(values[valid], data[valid])
