"""Tests for cell upserts and deletions."""

import numpy as np
import pytest

from repro.core import ArrayRDD
from repro.core.updates import delete_region, delete_where, merge_cells
from repro.engine import ClusterContext
from repro.errors import ArrayError


@pytest.fixture()
def ctx():
    return ClusterContext(num_executors=4, default_parallelism=4)


def base_array(ctx, seed=0, density=0.5):
    rng = np.random.default_rng(seed)
    data = rng.random((16, 16))
    valid = rng.random((16, 16)) < density
    return ArrayRDD.from_numpy(ctx, data, (8, 8), valid=valid), \
        data, valid


class TestMergeCells:
    def test_insert_new_cells(self, ctx):
        arr, _data, valid = base_array(ctx)
        empty = [tuple(map(int, c)) for c in np.argwhere(~valid)[:5]]
        updates = [(coords, 42.0) for coords in empty]
        merged = merge_cells(arr, updates)
        assert merged.count_valid() == int(valid.sum()) + 5
        for coords in empty:
            assert merged.get(coords) == 42.0

    def test_replace_existing(self, ctx):
        arr, data, valid = base_array(ctx, seed=1)
        target = tuple(map(int, np.argwhere(valid)[0]))
        merged = merge_cells(arr, [(target, -1.0)], how="replace")
        assert merged.get(target) == -1.0

    def test_keep_existing(self, ctx):
        arr, data, valid = base_array(ctx, seed=2)
        target = tuple(map(int, np.argwhere(valid)[0]))
        merged = merge_cells(arr, [(target, -1.0)], how="keep")
        assert merged.get(target) == pytest.approx(data[target])

    def test_sum(self, ctx):
        arr, data, valid = base_array(ctx, seed=3)
        target = tuple(map(int, np.argwhere(valid)[0]))
        merged = merge_cells(arr, [(target, 10.0)], how="sum")
        assert merged.get(target) == pytest.approx(data[target] + 10.0)

    def test_custom_resolver(self, ctx):
        arr, data, valid = base_array(ctx, seed=4)
        target = tuple(map(int, np.argwhere(valid)[0]))
        merged = merge_cells(arr, [(target, 3.0)],
                             how=lambda old, new: np.maximum(old, new))
        assert merged.get(target) == pytest.approx(
            max(data[target], 3.0))

    def test_update_into_empty_chunk(self, ctx):
        data = np.zeros((16, 16))
        valid = np.zeros((16, 16), dtype=bool)
        valid[0, 0] = True
        arr = ArrayRDD.from_numpy(ctx, data, (8, 8), valid=valid)
        assert arr.num_chunks_materialized() == 1
        merged = merge_cells(arr, [((12, 12), 5.0)])
        assert merged.num_chunks_materialized() == 2
        assert merged.get((12, 12)) == 5.0
        assert merged.get((0, 0)) == 0.0

    def test_untouched_cells_survive(self, ctx):
        arr, data, valid = base_array(ctx, seed=5)
        merged = merge_cells(arr, [((0, 0), 9.0)])
        values, got_valid = merged.collect_dense()
        expected_valid = valid.copy()
        expected_valid[0, 0] = True
        assert np.array_equal(got_valid, expected_valid)
        check = valid.copy()
        check[0, 0] = False
        assert np.allclose(values[check], data[check])

    def test_empty_updates_are_noop(self, ctx):
        arr, _d, _v = base_array(ctx, seed=6)
        assert merge_cells(arr, []) is arr

    def test_duplicate_coordinates_rejected(self, ctx):
        arr, _d, _v = base_array(ctx, seed=7)
        with pytest.raises(ArrayError):
            merge_cells(arr, [((0, 0), 1.0), ((0, 0), 2.0)])

    def test_unknown_resolver_rejected(self, ctx):
        arr, _d, _v = base_array(ctx, seed=8)
        with pytest.raises(ArrayError):
            merge_cells(arr, [((0, 0), 1.0)], how="average")

    def test_out_of_bounds_rejected(self, ctx):
        from repro.errors import CoordinateError

        arr, _d, _v = base_array(ctx, seed=9)
        with pytest.raises(CoordinateError):
            merge_cells(arr, [((99, 0), 1.0)])


class TestDeletion:
    def test_delete_region(self, ctx):
        arr, _data, valid = base_array(ctx, density=1.0, seed=10)
        out = delete_region(arr, (4, 4), (11, 11))
        _values, got_valid = out.collect_dense()
        expected = valid.copy()
        expected[4:12, 4:12] = False
        assert np.array_equal(got_valid, expected)

    def test_delete_region_drops_empty_chunks(self, ctx):
        arr, _d, _v = base_array(ctx, density=1.0, seed=11)
        out = delete_region(arr, (0, 0), (7, 7))
        assert out.num_chunks_materialized() == 3

    def test_delete_where(self, ctx):
        arr, data, valid = base_array(ctx, density=0.8, seed=12)
        out = delete_where(arr, lambda xs: xs > 0.5)
        _values, got_valid = out.collect_dense()
        expected = valid & ~(np.where(valid, data, 0) > 0.5)
        assert np.array_equal(got_valid, expected)

    def test_delete_then_reinsert(self, ctx):
        arr, _data, _valid = base_array(ctx, density=1.0, seed=13)
        deleted = delete_region(arr, (0, 0), (15, 15))
        assert deleted.count_valid() == 0
        restored = merge_cells(
            ArrayRDD(deleted.rdd, deleted.meta, ctx),
            [((3, 3), 1.5)])
        assert restored.count_valid() == 1
        assert restored.get((3, 3)) == 1.5
