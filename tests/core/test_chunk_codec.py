"""The Chunk value codec for the columnar shuffle (core ↔ engine)."""

import pickle

import numpy as np
import pytest

from repro.core import ArrayMetadata, Chunk, ChunkMode  # registers codec
from repro.core.chunk_codec import ChunkValues, probe_chunks
from repro.core.ingest import array_rdd_from_records
from repro.engine import ClusterContext, HashPartitioner, disable_columnar
from repro.engine.batches import pack_values


def _chunk(mode, num_cells=256, seed=0):
    rng = np.random.default_rng(seed)
    density = {ChunkMode.DENSE: 0.9, ChunkMode.SPARSE: 0.1,
               ChunkMode.SUPER_SPARSE: 0.002}[mode]
    valid = rng.random(num_cells) < density
    if not valid.any():
        valid[3] = True
    return Chunk.from_dense(rng.random(num_cells), valid, mode=mode)


class TestChunkCodec:
    @pytest.mark.parametrize("mode", list(ChunkMode))
    def test_roundtrip_pickle_identical(self, mode):
        chunks = [_chunk(mode, seed=s) for s in range(4)]
        packed = pack_values(chunks)
        assert isinstance(packed, ChunkValues)
        out = packed.unpack()
        assert pickle.dumps(out) == pickle.dumps(chunks)

    def test_mixed_modes_in_one_column(self):
        chunks = [_chunk(mode, seed=7) for mode in ChunkMode]
        packed = pack_values(chunks)
        assert isinstance(packed, ChunkValues)
        assert pickle.dumps(packed.unpack()) == pickle.dumps(chunks)

    def test_gather_matches_fancy_select(self):
        chunks = [_chunk(mode, seed=s)
                  for s, mode in enumerate(ChunkMode)]
        packed = pack_values(chunks)
        idx = np.array([2, 0, 1])
        gathered = packed.gather(idx).unpack()
        assert pickle.dumps(gathered) \
            == pickle.dumps([chunks[i] for i in idx])

    def test_exact_nbytes(self):
        chunks = [_chunk(ChunkMode.SPARSE, seed=1)]
        packed = pack_values(chunks)
        # modes + num_cells + upper_lengths + payload column (data,
        # lengths, shapes) + word column (data, lengths, shapes)
        chunk = chunks[0]
        expected = (1 + 8 + 8
                    + chunk.payload.nbytes + 8 + 8
                    + chunk.mask.nbytes + 8 + 8)
        assert packed.nbytes == expected

    def test_milestone_cache_refuses(self):
        chunk = _chunk(ChunkMode.SPARSE, seed=2)
        chunk.mask.rank(100)  # populates the milestone cache
        assert probe_chunks([chunk]) is None

    def test_hierarchical_milestone_cache_refuses(self):
        chunk = _chunk(ChunkMode.SUPER_SPARSE, seed=3)
        chunk.mask.rank(100)  # ranks the upper mask
        assert probe_chunks([chunk]) is None

    def test_large_chunks_ship_by_reference(self):
        # one dense 4096-cell chunk is ~32KB of payload — the copies
        # would dwarf the framing savings, so the codec refuses
        assert probe_chunks([_chunk(ChunkMode.DENSE,
                                    num_cells=4096)]) is None

    def test_non_chunk_values_refuse(self):
        assert probe_chunks([1.5]) is None
        chunk = _chunk(ChunkMode.DENSE)
        assert probe_chunks([chunk, "nope"]) is None


class TestChunkShuffleByteIdentity:
    def _shuffle(self, columnar):
        import contextlib
        toggle = disable_columnar() if not columnar \
            else contextlib.nullcontext()
        with toggle, ClusterContext(num_executors=4) as ctx:
            chunks = [(cid, _chunk(mode, seed=cid))
                      for cid in range(12)
                      for mode in ChunkMode]
            # chunk-keyed placement shuffle: the codec packs whole
            # chunks into record batches
            rdd = ctx.parallelize(chunks, 5) \
                     .partition_by(HashPartitioner(3))
            result = rdd.collect()
            return result, ctx.metrics.snapshot()

    def test_columnar_equals_generic_across_modes(self):
        columnar_result, snap = self._shuffle(columnar=True)
        generic_result, _ = self._shuffle(columnar=False)
        assert pickle.dumps(columnar_result) \
            == pickle.dumps(generic_result)
        assert snap.shuffle_batches > 0
        assert snap.shuffle_batch_records == snap.shuffle_records

    def test_ingest_pipeline_byte_identity(self):
        def run(columnar):
            import contextlib
            toggle = disable_columnar() if not columnar \
                else contextlib.nullcontext()
            with toggle, ClusterContext(num_executors=4) as ctx:
                rng = np.random.default_rng(11)
                meta = ArrayMetadata((30, 30), (8, 8),
                                     dim_names=("x", "y"))
                records = [((r, c), float(rng.random()))
                           for r in range(30) for c in range(30)
                           if rng.random() < 0.5]
                arr = array_rdd_from_records(ctx, records, meta)
                out = sorted(arr.rdd.collect(), key=lambda kv: kv[0])
                return out, ctx.metrics.snapshot()

        columnar_out, snap = run(True)
        generic_out, _ = run(False)
        assert pickle.dumps(columnar_out) == pickle.dumps(generic_out)
        # the (offset, value) cell pairs ride packed batches
        assert snap.shuffle_batches > 0


class TestOffsetChunkCodec:
    """The OffsetArrayChunk columnar codec (matrix ↔ core)."""

    def _chunks(self, count=4, num_cells=256):
        from repro.matrix.offsets import OffsetArrayChunk

        rng = np.random.default_rng(9)
        out = []
        for _i in range(count):
            size = int(rng.integers(1, 20))
            offsets = rng.choice(num_cells, size=size, replace=False)
            out.append(OffsetArrayChunk(num_cells, offsets,
                                        rng.random(size)))
        return out

    def test_roundtrip_pickle_identical(self):
        from repro.core.chunk_codec import OffsetChunkValues

        chunks = self._chunks()
        packed = pack_values(chunks)
        assert isinstance(packed, OffsetChunkValues)
        assert pickle.dumps(packed.unpack()) == pickle.dumps(chunks)

    def test_gather_matches_fancy_select(self):
        chunks = self._chunks()
        packed = pack_values(chunks)
        idx = np.array([3, 1, 0])
        assert pickle.dumps(packed.gather(idx).unpack()) \
            == pickle.dumps([chunks[i] for i in idx])

    def test_mixed_with_plain_chunks_refuses(self):
        from repro.core.chunk_codec import probe_offset_chunks

        chunks = self._chunks(2)
        mixed = [chunks[0], _chunk(ChunkMode.SPARSE)]
        assert probe_offset_chunks(mixed) is None
        assert probe_offset_chunks([_chunk(ChunkMode.SPARSE)]) is None

    def test_byte_limit_refuses_big_chunks(self):
        from repro.core.chunk_codec import (
            probe_offset_chunks,
            probe_offset_chunks_for_spill,
        )
        from repro.matrix.offsets import OffsetArrayChunk

        cells = 2048
        big = [OffsetArrayChunk(cells, np.arange(cells),
                                np.random.default_rng(1).random(cells))
               for _i in range(2)]
        assert probe_offset_chunks(big) is None  # ships by reference
        assert probe_offset_chunks_for_spill(big) is not None

    def test_object_payload_refuses(self):
        from repro.core.chunk_codec import probe_offset_chunks
        from repro.matrix.offsets import OffsetArrayChunk

        chunk = OffsetArrayChunk(
            8, np.array([1, 3]), np.array([object(), object()]))
        assert probe_offset_chunks([chunk]) is None

    def test_shuffle_byte_identity(self):
        from repro.matrix.offsets import OffsetArrayChunk  # noqa: F401

        def run(columnar):
            ctx = ClusterContext(num_executors=2,
                                 default_parallelism=2)
            chunks = self._chunks(8)
            data = list(enumerate(chunks))
            with disable_columnar() if not columnar \
                    else _nullcontext():
                placed = ctx.parallelize(data, 2) \
                    .partition_by(HashPartitioner(2))
                return pickle.dumps(sorted(placed.collect(),
                                           key=lambda kv: kv[0]))

        assert run(columnar=True) == run(columnar=False)


class _nullcontext:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False
