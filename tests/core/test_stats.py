"""Tests for distributed statistics (describe/histogram/quantiles)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ArrayRDD
from repro.core.stats import approx_quantiles, describe, histogram
from repro.engine import ClusterContext
from repro.errors import ArrayError


@pytest.fixture()
def ctx():
    return ClusterContext(num_executors=4, default_parallelism=4)


def random_array(ctx, shape=(40, 30), density=0.5, seed=0):
    rng = np.random.default_rng(seed)
    data = rng.normal(loc=5.0, scale=2.0, size=shape)
    valid = rng.random(shape) < density
    return ArrayRDD.from_numpy(ctx, data, (16, 16), valid=valid), \
        data[valid]


class TestDescribe:
    def test_matches_numpy(self, ctx):
        arr, values = random_array(ctx)
        summary = describe(arr)
        assert summary.count == values.size
        assert summary.mean == pytest.approx(values.mean())
        assert summary.std == pytest.approx(values.std())
        assert summary.minimum == pytest.approx(values.min())
        assert summary.maximum == pytest.approx(values.max())

    def test_empty(self, ctx):
        arr = ArrayRDD.from_numpy(
            ctx, np.zeros((4, 4)), (2, 2),
            valid=np.zeros((4, 4), dtype=bool))
        summary = describe(arr)
        assert summary.count == 0
        assert np.isnan(summary.mean)

    def test_single_cell(self, ctx):
        valid = np.zeros((4, 4), dtype=bool)
        valid[1, 2] = True
        data = np.full((4, 4), 7.5)
        arr = ArrayRDD.from_numpy(ctx, data, (2, 2), valid=valid)
        summary = describe(arr)
        assert summary.count == 1
        assert summary.mean == 7.5
        assert summary.std == 0.0

    def test_as_dict(self, ctx):
        arr, _values = random_array(ctx, seed=1)
        d = describe(arr).as_dict()
        assert set(d) == {"count", "mean", "std", "min", "max"}


class TestHistogram:
    def test_matches_numpy(self, ctx):
        arr, values = random_array(ctx, seed=2)
        counts, edges = histogram(arr, bins=12)
        reference, ref_edges = np.histogram(values, bins=12)
        assert np.array_equal(counts, reference)
        assert np.allclose(edges, ref_edges)

    def test_explicit_range(self, ctx):
        arr, values = random_array(ctx, seed=3)
        counts, edges = histogram(arr, bins=5, value_range=(0.0, 10.0))
        reference, _ = np.histogram(values, bins=5, range=(0.0, 10.0))
        assert np.array_equal(counts, reference)

    def test_bins_validation(self, ctx):
        arr, _values = random_array(ctx)
        with pytest.raises(ArrayError):
            histogram(arr, bins=0)

    def test_empty_array(self, ctx):
        arr = ArrayRDD.from_numpy(
            ctx, np.zeros((4, 4)), (2, 2),
            valid=np.zeros((4, 4), dtype=bool))
        counts, edges = histogram(arr, bins=4)
        assert counts.sum() == 0
        assert edges.size == 5


class TestQuantiles:
    def test_exact_with_full_sample(self, ctx):
        arr, values = random_array(ctx, seed=4)
        got = approx_quantiles(arr, [0.0, 0.5, 1.0],
                               sample_fraction=1.0)
        assert np.allclose(got, np.quantile(values, [0.0, 0.5, 1.0]))

    def test_approximate_close(self, ctx):
        arr, values = random_array(ctx, shape=(100, 100), seed=5)
        got = approx_quantiles(arr, 0.5, sample_fraction=0.3, seed=1)
        assert got[0] == pytest.approx(np.median(values), abs=0.3)

    def test_validation(self, ctx):
        arr, _values = random_array(ctx)
        with pytest.raises(ArrayError):
            approx_quantiles(arr, [1.5])
        with pytest.raises(ArrayError):
            approx_quantiles(arr, [0.5], sample_fraction=0.0)

    def test_empty_returns_nan(self, ctx):
        arr = ArrayRDD.from_numpy(
            ctx, np.zeros((4, 4)), (2, 2),
            valid=np.zeros((4, 4), dtype=bool))
        got = approx_quantiles(arr, [0.5], sample_fraction=1.0)
        assert np.isnan(got).all()


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 500),
    density=st.floats(0.05, 1.0),
)
def test_describe_property(seed, density):
    ctx = ClusterContext(num_executors=2, default_parallelism=2)
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(20, 20))
    valid = rng.random((20, 20)) < density
    if not valid.any():
        valid[0, 0] = True
    arr = ArrayRDD.from_numpy(ctx, data, (7, 7), valid=valid)
    summary = describe(arr)
    reference = data[valid]
    assert summary.count == reference.size
    assert summary.mean == pytest.approx(reference.mean(), abs=1e-9)
    assert summary.std == pytest.approx(reference.std(), abs=1e-9)
