"""Drift guard: repro.plan must re-export everything repro.core.plan does.

The public alias exists so user code (and the docs) can write
``repro.plan.disable_fusion()`` without reaching into ``repro.core``.
It has historically lagged the implementation module — RepackKernel,
MaskApplySource and ElementwiseSource were all added to core.plan
without updating the alias — so this test compares the two modules
name-by-name instead of trusting a hand-maintained list.
"""

from repro import plan as public_plan
from repro.core import plan as core_plan


class TestPlanAliasSync:
    def test_all_matches_implementation_module(self):
        assert set(public_plan.__all__) == set(core_plan.__all__), (
            "repro.plan.__all__ drifted from repro.core.plan.__all__; "
            "update src/repro/plan.py"
        )

    def test_every_name_is_the_same_object(self):
        for name in core_plan.__all__:
            assert getattr(public_plan, name) is getattr(core_plan, name), (
                f"repro.plan.{name} is not the repro.core.plan object"
            )

    def test_all_is_sorted_and_unique(self):
        names = list(public_plan.__all__)
        assert names == sorted(set(names))

    def test_known_late_additions_are_present(self):
        # the three names whose absence motivated this guard
        for name in ("RepackKernel", "MaskApplySource", "ElementwiseSource"):
            assert hasattr(public_plan, name)
            assert name in public_plan.__all__
