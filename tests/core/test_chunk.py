"""Tests for the Chunk: three modes, access paths, elementwise ops."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chunk import (
    Chunk,
    ChunkMode,
    DENSE_THRESHOLD,
    SUPER_SPARSE_THRESHOLD,
    choose_mode,
)
from repro.bitmask import Bitmask
from repro.errors import ArrayError


def random_chunk(n, density, seed, mode=None):
    rng = np.random.default_rng(seed)
    values = rng.random(n)
    valid = rng.random(n) < density
    return Chunk.from_dense(values, valid, mode=mode), values, valid


class TestModePolicy:
    def test_thresholds(self):
        assert choose_mode(1.0) is ChunkMode.DENSE
        assert choose_mode(DENSE_THRESHOLD) is ChunkMode.DENSE
        assert choose_mode(0.1) is ChunkMode.SPARSE
        assert choose_mode(SUPER_SPARSE_THRESHOLD / 2) \
            is ChunkMode.SUPER_SPARSE

    def test_from_dense_auto_mode(self):
        chunk, _v, _m = random_chunk(4096, 0.9, seed=0)
        assert chunk.mode is ChunkMode.DENSE
        chunk, _v, _m = random_chunk(4096, 0.1, seed=0)
        assert chunk.mode is ChunkMode.SPARSE
        chunk, _v, _m = random_chunk(4096, 0.001, seed=0)
        assert chunk.mode is ChunkMode.SUPER_SPARSE


class TestConstruction:
    def test_all_valid_default(self):
        chunk = Chunk.from_dense(np.arange(10.0))
        assert chunk.valid_count == 10
        assert chunk.density == 1.0

    def test_mismatched_validity(self):
        with pytest.raises(ArrayError):
            Chunk.from_dense(np.arange(4.0), np.ones(5, dtype=bool))

    def test_from_sparse_sorts_offsets(self):
        chunk = Chunk.from_sparse(10, [7, 2, 5], [70.0, 20.0, 50.0])
        assert list(chunk.indices()) == [2, 5, 7]
        assert list(chunk.values()) == [20.0, 50.0, 70.0]

    def test_from_sparse_rejects_duplicates(self):
        with pytest.raises(ArrayError):
            Chunk.from_sparse(10, [1, 1], [1.0, 2.0])

    def test_from_sparse_rejects_out_of_range(self):
        with pytest.raises(ArrayError):
            Chunk.from_sparse(10, [10], [1.0])

    def test_from_sparse_length_mismatch(self):
        with pytest.raises(ArrayError):
            Chunk.from_sparse(10, [1, 2], [1.0])

    def test_empty(self):
        chunk = Chunk.empty(100)
        assert chunk.valid_count == 0
        assert chunk.density == 0.0


@pytest.mark.parametrize("mode", list(ChunkMode))
class TestAcrossModes:
    """Every behaviour must be identical in all three storage modes."""

    def test_get_valid_and_invalid(self, mode):
        chunk, values, valid = random_chunk(500, 0.3, seed=1, mode=mode)
        for offset in range(0, 500, 13):
            got = chunk.get(offset)
            if valid[offset]:
                assert got == values[offset]
            else:
                assert got is None

    def test_get_out_of_range(self, mode):
        chunk, _v, _m = random_chunk(64, 0.5, seed=2, mode=mode)
        with pytest.raises(ArrayError):
            chunk.get(64)

    def test_to_dense_roundtrip(self, mode):
        chunk, values, valid = random_chunk(300, 0.4, seed=3, mode=mode)
        dense = chunk.to_dense(fill=-1.0)
        assert np.allclose(dense[valid], values[valid])
        assert (dense[~valid] == -1.0).all()

    def test_values_in_offset_order(self, mode):
        chunk, values, valid = random_chunk(300, 0.4, seed=4, mode=mode)
        assert np.allclose(chunk.values(), values[valid])

    def test_iter_cells(self, mode):
        chunk, values, valid = random_chunk(200, 0.2, seed=5, mode=mode)
        cells = dict(chunk.iter_cells())
        assert set(cells) == set(np.nonzero(valid)[0])

    def test_map_values(self, mode):
        chunk, values, valid = random_chunk(200, 0.3, seed=6, mode=mode)
        doubled = chunk.map_values(lambda xs: xs * 2)
        assert np.allclose(doubled.values(), values[valid] * 2)
        assert doubled.valid_count == chunk.valid_count

    def test_filter(self, mode):
        chunk, values, valid = random_chunk(200, 0.5, seed=7, mode=mode)
        kept = chunk.filter(lambda xs: xs > 0.5)
        expected = valid & (np.where(valid, values, 0) > 0.5)
        assert np.array_equal(kept.valid_bools(), expected)

    def test_and_mask(self, mode):
        chunk, values, valid = random_chunk(200, 0.5, seed=8, mode=mode)
        rng = np.random.default_rng(9)
        other = rng.random(200) < 0.5
        restricted = chunk.and_mask(Bitmask.from_bools(other))
        assert np.array_equal(restricted.valid_bools(), valid & other)
        assert np.allclose(restricted.values(), values[valid & other])

    def test_convert_roundtrip(self, mode):
        chunk, _values, _valid = random_chunk(300, 0.1, seed=10, mode=mode)
        for target in ChunkMode:
            converted = chunk.convert(target)
            assert converted.mode is target
            assert converted == chunk

    def test_nbytes_positive(self, mode):
        chunk, _v, _m = random_chunk(128, 0.2, seed=11, mode=mode)
        assert chunk.nbytes > 0


class TestCompression:
    def test_sparse_smaller_than_dense_when_sparse(self):
        _, values, valid = random_chunk(65_536, 0.05, seed=12)
        dense = Chunk.from_dense(values, valid, mode=ChunkMode.DENSE)
        sparse = Chunk.from_dense(values, valid, mode=ChunkMode.SPARSE)
        assert sparse.nbytes < dense.nbytes / 3

    def test_super_sparse_smaller_than_sparse_when_super_sparse(self):
        _, values, valid = random_chunk(65_536, 0.0005, seed=13)
        sparse = Chunk.from_dense(values, valid, mode=ChunkMode.SPARSE)
        hyper = Chunk.from_dense(values, valid,
                                 mode=ChunkMode.SUPER_SPARSE)
        assert hyper.nbytes < sparse.nbytes / 2

    def test_recompress_after_filter(self):
        chunk, _values, _valid = random_chunk(65_536, 0.9, seed=14)
        assert chunk.mode is ChunkMode.DENSE
        nearly_empty = chunk.filter(lambda xs: xs > 0.9999)
        assert nearly_empty.mode is not ChunkMode.DENSE

    def test_and_mask_recompresses(self):
        chunk, _values, _valid = random_chunk(65_536, 0.9, seed=15)
        tiny = Bitmask.from_indices(65_536, [1, 2, 3])
        restricted = chunk.and_mask(tiny)
        assert restricted.mode is ChunkMode.SUPER_SPARSE


class TestElementwise:
    @pytest.mark.parametrize("left_mode", list(ChunkMode))
    @pytest.mark.parametrize("right_mode", list(ChunkMode))
    def test_and_semantics(self, left_mode, right_mode):
        a, av, am = random_chunk(300, 0.4, seed=16, mode=left_mode)
        b, bv, bm = random_chunk(300, 0.4, seed=17, mode=right_mode)
        out = a.elementwise(b, np.multiply, how="and")
        both = am & bm
        assert np.array_equal(out.valid_bools(), both)
        assert np.allclose(out.values(), (av * bv)[both])

    def test_or_semantics_with_fill(self):
        a, av, am = random_chunk(300, 0.3, seed=18)
        b, bv, bm = random_chunk(300, 0.3, seed=19)
        out = a.elementwise(b, np.add, how="or", fill=0.0)
        either = am | bm
        expected = np.where(am, av, 0.0) + np.where(bm, bv, 0.0)
        assert np.array_equal(out.valid_bools(), either)
        assert np.allclose(out.values(), expected[either])

    def test_size_mismatch(self):
        a = Chunk.from_dense(np.arange(4.0))
        b = Chunk.from_dense(np.arange(5.0))
        with pytest.raises(ArrayError):
            a.elementwise(b, np.add)

    def test_unknown_how(self):
        a = Chunk.from_dense(np.arange(4.0))
        with pytest.raises(ArrayError):
            a.elementwise(a, np.add, how="xor")

    def test_and_skips_null_pairs(self):
        """Bitmask AND means no op is applied to invalid pairs (Fig. 5)."""
        calls = []

        def spying_op(x, y):
            calls.append(x.size)
            return x * y

        a = Chunk.from_sparse(1000, [1, 2], [1.0, 2.0])
        b = Chunk.from_sparse(1000, [2, 3], [4.0, 5.0])
        out = a.elementwise(b, spying_op, how="and")
        assert calls == [1]  # only the single common cell was computed
        assert out.valid_count == 1
        assert out.get(2) == 8.0


@settings(max_examples=40)
@given(
    n=st.integers(1, 400),
    density=st.floats(0.0, 1.0),
    seed=st.integers(0, 10_000),
)
def test_chunk_roundtrip_property(n, density, seed):
    rng = np.random.default_rng(seed)
    values = rng.random(n)
    valid = rng.random(n) < density
    chunk = Chunk.from_dense(values, valid)
    assert chunk.valid_count == int(valid.sum())
    assert np.allclose(chunk.to_dense(0)[valid], values[valid])
    for mode in ChunkMode:
        assert chunk.convert(mode) == chunk
