"""Property-based tests for operator-level invariants of ArrayRDD."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ArrayRDD
from repro.core.accumulate import accumulate_axis
from repro.core.reshape import permute_axes, rechunk
from repro.core.windows import window_aggregate
from repro.engine import ClusterContext


arrays = st.tuples(
    st.integers(3, 18),           # rows
    st.integers(3, 18),           # cols
    st.integers(2, 7),            # chunk rows
    st.integers(2, 7),            # chunk cols
    st.floats(0.1, 1.0),          # density
    st.integers(0, 500),          # seed
)


def build(ctx, spec):
    rows, cols, cr, cc, density, seed = spec
    rng = np.random.default_rng(seed)
    data = rng.random((rows, cols))
    valid = rng.random((rows, cols)) < density
    if not valid.any():
        valid[0, 0] = True
    return ArrayRDD.from_numpy(ctx, data, (cr, cc), valid=valid), \
        data, valid


@settings(max_examples=30, deadline=None)
@given(spec=arrays)
def test_window_sums_partition_the_total(spec):
    """Window sums over any tiling must add up to the global sum."""
    ctx = ClusterContext(2, default_parallelism=2)
    arr, data, valid = build(ctx, spec)
    windows = window_aggregate(arr, (4, 4), "sum")
    total = windows.aggregate("sum")
    assert total == pytest.approx(data[valid].sum())


@settings(max_examples=30, deadline=None)
@given(spec=arrays)
def test_subarray_filter_commute(spec):
    """filter(subarray(x)) == subarray(filter(x)) cell-for-cell."""
    ctx = ClusterContext(2, default_parallelism=2)
    arr, _data, _valid = build(ctx, spec)
    rows, cols = arr.meta.shape
    box = ((0, 0), (rows // 2, cols // 2))
    pred = lambda xs: xs > 0.5  # noqa: E731
    a = arr.subarray(*box).filter(pred).collect_dense(0.0)
    b = arr.filter(pred).subarray(*box).collect_dense(0.0)
    assert np.array_equal(a[1], b[1])
    assert np.allclose(a[0][a[1]], b[0][b[1]])


@settings(max_examples=30, deadline=None)
@given(spec=arrays)
def test_rechunk_invariant_under_aggregation(spec):
    """Any aggregate is invariant under re-chunking."""
    ctx = ClusterContext(2, default_parallelism=2)
    arr, data, valid = build(ctx, spec)
    rechunked = rechunk(arr, (max(1, spec[2] * 2), max(1, spec[3] - 1)))
    assert rechunked.aggregate("sum") == pytest.approx(
        arr.aggregate("sum"))
    assert rechunked.count_valid() == arr.count_valid()


@settings(max_examples=30, deadline=None)
@given(spec=arrays)
def test_transpose_involution(spec):
    ctx = ClusterContext(2, default_parallelism=2)
    arr, data, valid = build(ctx, spec)
    back = permute_axes(permute_axes(arr, (1, 0)), (1, 0))
    values, got_valid = back.collect_dense(0.0)
    assert np.array_equal(got_valid, valid)
    assert np.allclose(values[valid], data[valid])


@settings(max_examples=25, deadline=None)
@given(spec=arrays)
def test_accumulate_last_equals_aggregate(spec):
    """The final slice of a running sum is the per-line total."""
    ctx = ClusterContext(2, default_parallelism=2)
    arr, data, valid = build(ctx, spec)
    running = accumulate_axis(arr, 1, "sum", mode="async")
    values, got_valid = running.collect_dense(0.0)
    filled = np.where(valid, data, 0.0)
    expected_last = filled.cumsum(axis=1)[:, -1]
    # check rows whose final cell is valid (others carry no value there)
    last_col = valid[:, -1]
    assert np.allclose(values[last_col, -1], expected_last[last_col])


@settings(max_examples=30, deadline=None)
@given(spec=arrays, spec_b=arrays)
def test_or_join_count_inclusion_exclusion(spec, spec_b):
    ctx = ClusterContext(2, default_parallelism=2)
    arr_a, _da, va = build(ctx, spec)
    rows, cols = arr_a.meta.shape
    cr, cc = arr_a.meta.chunk_shape
    rng = np.random.default_rng(spec_b[5] + 1)
    db = rng.random((rows, cols))
    vb = rng.random((rows, cols)) < spec_b[4]
    arr_b = ArrayRDD.from_numpy(ctx, db, (cr, cc), valid=vb)
    union = arr_a.combine(arr_b, np.add, how="or").count_valid()
    intersection = arr_a.combine(arr_b, np.add,
                                 how="and").count_valid()
    assert union + intersection \
        == arr_a.count_valid() + arr_b.count_valid()
