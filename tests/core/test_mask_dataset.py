"""Tests for MaskRDD lazy evaluation and the multi-attribute dataset."""

import numpy as np
import pytest

from repro.core import ArrayRDD, MaskRDD, SpangleDataset
from repro.engine import ClusterContext
from repro.errors import AttributeMismatchError, ShapeMismatchError


@pytest.fixture()
def ctx():
    return ClusterContext(num_executors=4, default_parallelism=4)


def make_attrs(ctx, num_attrs=3, shape=(32, 24), chunk=(8, 8), seed=0):
    rng = np.random.default_rng(seed)
    base_valid = rng.random(shape) < 0.6
    attrs, datas = {}, {}
    for k in range(num_attrs):
        data = rng.random(shape)
        name = "ugriz"[k]
        attrs[name] = ArrayRDD.from_numpy(ctx, data, chunk,
                                          valid=base_valid,
                                          attribute=name)
        datas[name] = data
    return attrs, datas, base_valid


class TestMaskRDD:
    def test_full_mask_counts_in_bounds_cells(self, ctx):
        arr = ArrayRDD.from_numpy(ctx, np.ones((10, 10)), (4, 4))
        mask = MaskRDD.full(ctx, arr.meta)
        assert mask.count_valid() == 100  # padding cells excluded

    def test_from_array_rdd(self, ctx):
        rng = np.random.default_rng(1)
        valid = rng.random((10, 10)) < 0.5
        arr = ArrayRDD.from_numpy(ctx, rng.random((10, 10)), (5, 5),
                                  valid=valid)
        mask = MaskRDD.from_array_rdd(arr)
        assert mask.count_valid() == int(valid.sum())

    def test_subarray(self, ctx):
        arr = ArrayRDD.from_numpy(ctx, np.ones((16, 16)), (8, 8))
        mask = MaskRDD.full(ctx, arr.meta).subarray((0, 0), (3, 3))
        assert mask.count_valid() == 16

    def test_filter_on_then_apply(self, ctx):
        rng = np.random.default_rng(2)
        data = rng.random((16, 16))
        arr = ArrayRDD.from_numpy(ctx, data, (8, 8))
        mask = MaskRDD.full(ctx, arr.meta).filter_on(
            arr, lambda xs: xs > 0.5)
        restricted = mask.apply_to(arr)
        _values, valid = restricted.collect_dense()
        assert np.array_equal(valid, data > 0.5)

    def test_and_or(self, ctx):
        ones = ArrayRDD.from_numpy(ctx, np.ones((8, 8)), (4, 4))
        left = MaskRDD.full(ctx, ones.meta).subarray((0, 0), (3, 7))
        right = MaskRDD.full(ctx, ones.meta).subarray((2, 0), (7, 7))
        assert left.and_(right).count_valid() == 2 * 8
        assert left.or_(right).count_valid() == 8 * 8

    def test_geometry_mismatch(self, ctx):
        a = ArrayRDD.from_numpy(ctx, np.ones((8, 8)), (4, 4))
        b = ArrayRDD.from_numpy(ctx, np.ones((8, 8)), (2, 2))
        with pytest.raises(ShapeMismatchError):
            MaskRDD.from_array_rdd(a).and_(MaskRDD.from_array_rdd(b))

    def test_apply_drops_masked_out_chunks(self, ctx):
        arr = ArrayRDD.from_numpy(ctx, np.ones((16, 16)), (8, 8))
        corner = MaskRDD.full(ctx, arr.meta).subarray((0, 0), (7, 7))
        restricted = corner.apply_to(arr)
        assert restricted.num_chunks_materialized() == 1


class TestDataset:
    def test_lazy_filter_matches_eager(self, ctx):
        attrs, datas, base_valid = make_attrs(ctx)
        lazy = SpangleDataset(attrs, use_mask_rdd=True)
        eager = SpangleDataset(attrs, use_mask_rdd=False)
        pred = lambda xs: xs > 0.4  # noqa: E731

        lazy_out = lazy.filter("u", pred).evaluate("g")
        eager_out = eager.filter("u", pred).evaluate("g")
        lv, lvalid = lazy_out.collect_dense()
        ev, evalid = eager_out.collect_dense()
        assert np.array_equal(lvalid, evalid)
        assert np.allclose(np.nan_to_num(lv), np.nan_to_num(ev))

    def test_chained_filters(self, ctx):
        attrs, datas, base_valid = make_attrs(ctx, seed=3)
        ds = SpangleDataset(attrs)
        out = ds.filter("u", lambda xs: xs > 0.2) \
                .filter("g", lambda xs: xs < 0.9) \
                .evaluate("r")
        _values, valid = out.collect_dense()
        expected = (
            base_valid
            & (np.where(base_valid, datas["u"], 0) > 0.2)
            & (np.where(base_valid, datas["g"], 1) < 0.9)
        )
        assert np.array_equal(valid, expected)

    def test_subarray_then_filter(self, ctx):
        attrs, datas, base_valid = make_attrs(ctx, seed=4)
        ds = SpangleDataset(attrs).subarray((4, 4), (20, 20)) \
                                  .filter("u", lambda xs: xs > 0.5)
        _values, valid = ds.evaluate("u").collect_dense()
        box = np.zeros_like(base_valid)
        box[4:21, 4:21] = True
        expected = base_valid & box \
            & (np.where(base_valid, datas["u"], 0) > 0.5)
        assert np.array_equal(valid, expected)

    def test_lazy_filter_does_not_touch_attributes(self, ctx):
        attrs, _datas, _bv = make_attrs(ctx, seed=5)
        ds = SpangleDataset(attrs)
        before = ctx.metrics.snapshot()
        ds.filter("u", lambda xs: xs > 0.5)  # no evaluation triggered
        delta = ctx.metrics.snapshot() - before
        assert delta.jobs_run == 0

    def test_join_and(self, ctx):
        attrs_a, _da, valid_a = make_attrs(ctx, num_attrs=1, seed=6)
        attrs_b, _db, valid_b = make_attrs(ctx, num_attrs=1, seed=7)
        attrs_b = {"g2": attrs_b["u"]}
        joined = SpangleDataset(attrs_a).join(SpangleDataset(attrs_b),
                                              how="and")
        assert set(joined.attribute_names) == {"u", "g2"}
        _v, valid = joined.evaluate("u").collect_dense()
        assert np.array_equal(valid, valid_a & valid_b)

    def test_join_or_keeps_either(self, ctx):
        attrs_a, _da, valid_a = make_attrs(ctx, num_attrs=1, seed=8)
        attrs_b, _db, valid_b = make_attrs(ctx, num_attrs=1, seed=9)
        attrs_b = {"w": attrs_b["u"]}
        joined = SpangleDataset(attrs_a).join(SpangleDataset(attrs_b),
                                              how="or")
        # the or-join mask keeps a cell if either side had it; attribute
        # u can still only produce values where u itself was valid
        _v, valid = joined.evaluate("u").collect_dense()
        assert np.array_equal(valid, valid_a)

    def test_join_name_clash(self, ctx):
        attrs, _d, _v = make_attrs(ctx, num_attrs=1, seed=10)
        ds = SpangleDataset(attrs)
        with pytest.raises(AttributeMismatchError):
            ds.join(ds)

    def test_unknown_attribute(self, ctx):
        attrs, _d, _v = make_attrs(ctx, num_attrs=1, seed=11)
        ds = SpangleDataset(attrs)
        with pytest.raises(AttributeMismatchError):
            ds.evaluate("nope")

    def test_geometry_mismatch_rejected(self, ctx):
        a = ArrayRDD.from_numpy(ctx, np.ones((8, 8)), (4, 4))
        b = ArrayRDD.from_numpy(ctx, np.ones((8, 4)), (4, 4))
        with pytest.raises(ShapeMismatchError):
            SpangleDataset({"a": a, "b": b})

    def test_aggregate(self, ctx):
        attrs, datas, base_valid = make_attrs(ctx, num_attrs=1, seed=12)
        ds = SpangleDataset(attrs)
        expected = datas["u"][base_valid].mean()
        assert ds.aggregate("u", "avg") == pytest.approx(expected)
