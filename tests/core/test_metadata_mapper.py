"""Tests for ArrayMetadata and the coordinate/chunk-ID mapper."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ArrayMetadata
from repro.core import mapper
from repro.errors import CoordinateError, MetadataError


class TestMetadata:
    def test_basic_geometry(self):
        meta = ArrayMetadata((100, 60), (32, 32))
        assert meta.ndim == 2
        assert meta.num_cells == 6000
        assert meta.chunk_grid == (4, 2)
        assert meta.num_chunks == 8
        assert meta.cells_per_chunk == 1024
        assert meta.ends == (100, 60)

    def test_starts(self):
        meta = ArrayMetadata((10, 10), (5, 5), starts=(100, -20))
        assert meta.ends == (110, -10)
        meta.check_coords((105, -15))
        with pytest.raises(CoordinateError):
            meta.check_coords((99, -15))

    def test_dim_names(self):
        meta = ArrayMetadata((4, 4, 4), (2, 2, 2),
                             dim_names=("x", "y", "time"))
        assert meta.dim_index("time") == 2
        with pytest.raises(MetadataError):
            meta.dim_index("z")

    def test_default_dim_names(self):
        meta = ArrayMetadata((4, 4), (2, 2))
        assert meta.dim_names == ("dim0", "dim1")

    def test_duplicate_dim_names_rejected(self):
        with pytest.raises(MetadataError):
            ArrayMetadata((4, 4), (2, 2), dim_names=("x", "x"))

    def test_arity_mismatches_rejected(self):
        with pytest.raises(MetadataError):
            ArrayMetadata((4, 4), (2,))
        with pytest.raises(MetadataError):
            ArrayMetadata((4,), (2,), starts=(0, 0))

    def test_nonpositive_rejected(self):
        with pytest.raises(MetadataError):
            ArrayMetadata((0, 4), (2, 2))
        with pytest.raises(MetadataError):
            ArrayMetadata((4, 4), (2, 0))

    def test_check_coords_arity(self):
        meta = ArrayMetadata((4, 4), (2, 2))
        with pytest.raises(CoordinateError):
            meta.check_coords((1,))

    def test_transposed_roundtrip(self):
        meta = ArrayMetadata((3, 7), (2, 4), starts=(1, 2),
                             dim_names=("r", "c"))
        t = meta.transposed()
        assert t.shape == (7, 3)
        assert t.chunk_shape == (4, 2)
        assert t.starts == (2, 1)
        assert t.dim_names == ("c", "r")
        assert t.transposed() == meta

    def test_with_attribute_and_dtype(self):
        meta = ArrayMetadata((4,), (2,))
        assert meta.with_attribute("chl").attribute == "chl"
        assert meta.with_dtype(np.int32).dtype == np.int32

    def test_describe(self):
        meta = ArrayMetadata((4, 4), (2, 2), attribute="chl")
        assert "chl" in meta.describe()


class TestAlgorithm1:
    """Chunk-ID computation exactly as the paper's Algorithm 1."""

    def test_paper_algorithm_reference(self):
        # literal transcription of Algorithm 1, checked against ours
        meta = ArrayMetadata((10, 7, 5), (3, 2, 4))

        def reference(pos):
            chunk_id = 0
            length = 1
            for i in range(meta.ndim):
                chunk_id += (pos[i] // meta.chunk_shape[i]) * length
                length *= -(-meta.shape[i] // meta.chunk_shape[i])
            return chunk_id

        for coords in [(0, 0, 0), (9, 6, 4), (3, 2, 4), (5, 5, 1)]:
            assert mapper.chunk_id_for_coords(meta, coords) \
                == reference(coords)

    def test_dimension_zero_fastest(self):
        meta = ArrayMetadata((4, 4), (2, 2))
        assert mapper.chunk_id_for_coords(meta, (0, 0)) == 0
        assert mapper.chunk_id_for_coords(meta, (2, 0)) == 1
        assert mapper.chunk_id_for_coords(meta, (0, 2)) == 2
        assert mapper.chunk_id_for_coords(meta, (2, 2)) == 3

    def test_ids_are_dense_and_unique(self):
        meta = ArrayMetadata((6, 5), (2, 3))
        ids = {
            mapper.chunk_id_for_coords(meta, (i, j))
            for i in range(6) for j in range(5)
        }
        assert ids == set(range(meta.num_chunks))

    def test_chunk_coords_inverse(self):
        meta = ArrayMetadata((10, 7, 5), (3, 2, 4))
        for chunk_id in range(meta.num_chunks):
            grid = mapper.chunk_coords_from_id(meta, chunk_id)
            assert mapper.chunk_id_from_chunk_coords(meta, grid) == chunk_id

    def test_chunk_id_out_of_range(self):
        meta = ArrayMetadata((4, 4), (2, 2))
        with pytest.raises(CoordinateError):
            mapper.chunk_coords_from_id(meta, 4)

    def test_chunk_origin(self):
        meta = ArrayMetadata((6, 6), (2, 3), starts=(10, 20))
        assert mapper.chunk_origin(meta, 0) == (10, 20)
        last = meta.num_chunks - 1
        assert mapper.chunk_origin(meta, last) == (14, 23)

    def test_nonzero_starts(self):
        meta = ArrayMetadata((4, 4), (2, 2), starts=(100, 200))
        assert mapper.chunk_id_for_coords(meta, (100, 200)) == 0
        assert mapper.chunk_id_for_coords(meta, (103, 203)) == 3


class TestLocalOffsets:
    def test_offset_order_matches_chunk_id_order(self):
        meta = ArrayMetadata((4, 4), (2, 2))
        # dimension 0 fastest within a chunk too
        assert mapper.local_offset(meta, (0, 0)) == 0
        assert mapper.local_offset(meta, (1, 0)) == 1
        assert mapper.local_offset(meta, (0, 1)) == 2
        assert mapper.local_offset(meta, (1, 1)) == 3

    def test_coords_for_offset_inverse(self):
        meta = ArrayMetadata((5, 7), (2, 3), starts=(3, -2))
        for i in range(3, 8):
            for j in range(-2, 5):
                cid = mapper.chunk_id_for_coords(meta, (i, j))
                off = mapper.local_offset(meta, (i, j))
                assert mapper.coords_for_offset(meta, cid, off) == (i, j)

    def test_vectorized_matches_scalar(self):
        meta = ArrayMetadata((9, 11, 4), (4, 3, 2), starts=(1, 0, -1))
        rng = np.random.default_rng(0)
        coords = np.stack([
            rng.integers(1, 10, 200),
            rng.integers(0, 11, 200),
            rng.integers(-1, 3, 200),
        ], axis=1)
        ids = mapper.chunk_ids_for_coords_array(meta, coords)
        offs = mapper.local_offsets_for_coords_array(meta, coords)
        for k in range(coords.shape[0]):
            c = tuple(coords[k])
            assert ids[k] == mapper.chunk_id_for_coords(meta, c)
            assert offs[k] == mapper.local_offset(meta, c)

    def test_coords_for_offsets_array(self):
        meta = ArrayMetadata((5, 5), (2, 2))
        offsets = np.arange(4)
        coords = mapper.coords_for_offsets_array(meta, 3, offsets)
        for k, off in enumerate(offsets):
            assert tuple(coords[k]) == mapper.coords_for_offset(
                meta, 3, int(off))

    def test_bad_matrix_shape(self):
        meta = ArrayMetadata((4, 4), (2, 2))
        with pytest.raises(CoordinateError):
            mapper.chunk_ids_for_coords_array(meta, np.zeros((3, 3)))


class TestRangeQueries:
    def test_chunk_ids_in_range_full(self):
        meta = ArrayMetadata((8, 8), (4, 4))
        assert mapper.chunk_ids_in_range(meta, (0, 0), (7, 7)) == [0, 1, 2, 3]

    def test_chunk_ids_in_range_single(self):
        meta = ArrayMetadata((8, 8), (4, 4))
        assert mapper.chunk_ids_in_range(meta, (5, 1), (6, 2)) == [1]

    def test_chunk_ids_in_range_clips(self):
        meta = ArrayMetadata((8, 8), (4, 4))
        assert mapper.chunk_ids_in_range(meta, (-5, -5), (100, 2)) == [0, 1]

    def test_chunk_ids_empty_outside(self):
        meta = ArrayMetadata((8, 8), (4, 4))
        assert mapper.chunk_ids_in_range(meta, (100, 100), (200, 200)) == []

    def test_inverted_range_rejected(self):
        meta = ArrayMetadata((8, 8), (4, 4))
        with pytest.raises(CoordinateError):
            mapper.chunk_ids_in_range(meta, (5, 5), (1, 1))

    def test_range_mask_for_chunk(self):
        meta = ArrayMetadata((4, 4), (2, 2))
        mask = mapper.range_mask_for_chunk(meta, 0, (1, 1), (3, 3))
        # chunk 0 covers (0..1, 0..1); only (1,1) is inside the range
        expected = np.zeros(4, dtype=bool)
        expected[mapper.local_offset(meta, (1, 1))] = True
        assert np.array_equal(mask, expected)

    def test_in_bounds_mask_for_edge_chunk(self):
        meta = ArrayMetadata((3, 3), (2, 2))
        # last chunk covers (2..3, 2..3) logically but only (2,2) exists
        mask = mapper.in_bounds_mask_for_chunk(meta, meta.num_chunks - 1)
        assert mask.sum() == 1
        assert mask[0]


@settings(max_examples=60)
@given(
    shape=st.tuples(st.integers(1, 12), st.integers(1, 12)),
    chunk=st.tuples(st.integers(1, 5), st.integers(1, 5)),
    data=st.data(),
)
def test_mapper_bijection_property(shape, chunk, data):
    """(chunk_id, offset) identifies each in-bounds cell uniquely."""
    meta = ArrayMetadata(shape, chunk)
    i = data.draw(st.integers(0, shape[0] - 1))
    j = data.draw(st.integers(0, shape[1] - 1))
    cid = mapper.chunk_id_for_coords(meta, (i, j))
    off = mapper.local_offset(meta, (i, j))
    assert 0 <= cid < meta.num_chunks
    assert 0 <= off < meta.cells_per_chunk
    assert mapper.coords_for_offset(meta, cid, off) == (i, j)
