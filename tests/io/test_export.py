"""Tests for the export paths: ArrayRDD/dataset → SNF and CSV."""

import numpy as np
import pytest

from repro.core import ArrayRDD, SpangleDataset
from repro.engine import ClusterContext
from repro.io.export import (
    array_rdd_to_csv,
    array_rdd_to_snf,
    csv_to_array_rdd,
    dataset_to_snf,
)
from repro.io.snf import load_snf_as_dataset, read_snf


@pytest.fixture()
def ctx():
    return ClusterContext(num_executors=4, default_parallelism=4)


def random_array(ctx, shape=(20, 24), chunk=(8, 8), density=0.4,
                 seed=0, **kwargs):
    rng = np.random.default_rng(seed)
    data = rng.random(shape)
    valid = rng.random(shape) < density
    return ArrayRDD.from_numpy(ctx, data, chunk, valid=valid,
                               **kwargs), data, valid


class TestSNFExport:
    def test_array_roundtrip(self, ctx, tmp_path):
        arr, data, valid = random_array(ctx, attribute="chl",
                                        dim_names=("lat", "lon"))
        path = tmp_path / "out.snf"
        array_rdd_to_snf(arr, path)
        dims, attrs = read_snf(path)
        assert dims == {"lat": 20, "lon": 24}
        values, got_valid = attrs["chl"]
        assert np.array_equal(got_valid, valid)
        assert np.allclose(values[valid], data[valid])

    def test_dataset_roundtrip(self, ctx, tmp_path):
        a, data_a, valid = random_array(ctx, seed=1, attribute="a")
        b = ArrayRDD.from_numpy(ctx, data_a * 2, (8, 8), valid=valid,
                                attribute="b")
        ds = SpangleDataset({"a": a, "b": b})
        path = tmp_path / "ds.snf"
        dataset_to_snf(ds, path)
        back = load_snf_as_dataset(ctx, path, (8, 8))
        assert set(back.attribute_names) == {"a", "b"}
        assert back.count_valid("a") == int(valid.sum())

    def test_dataset_export_applies_pending_mask(self, ctx, tmp_path):
        arr, data, valid = random_array(ctx, density=0.8, seed=2)
        ds = SpangleDataset({"v": arr}).filter("v", lambda xs: xs > 0.5)
        path = tmp_path / "filtered.snf"
        dataset_to_snf(ds, path)
        _dims, attrs = read_snf(path)
        _values, got_valid = attrs["v"]
        expected = valid & (np.where(valid, data, 0) > 0.5)
        assert np.array_equal(got_valid, expected)


class TestCSVExport:
    def test_roundtrip(self, ctx, tmp_path):
        arr, data, valid = random_array(ctx, seed=3)
        path = tmp_path / "cells.csv"
        count = array_rdd_to_csv(arr, path)
        assert count == int(valid.sum())
        back = csv_to_array_rdd(ctx, path, (8, 8))
        assert back.count_valid() == count
        i, j = map(int, np.argwhere(valid)[0])
        assert back.get((i, j)) == pytest.approx(data[i, j])

    def test_csv_infers_starts(self, ctx, tmp_path):
        data = np.arange(12.0).reshape(3, 4)
        arr = ArrayRDD.from_numpy(ctx, data, (2, 2), starts=(50, 60))
        path = tmp_path / "cells.csv"
        array_rdd_to_csv(arr, path)
        back = csv_to_array_rdd(ctx, path, (2, 2))
        assert back.meta.starts == (50, 60)
        assert back.get((50, 60)) == 0.0
        assert back.get((52, 63)) == 11.0

    def test_empty_csv_rejected(self, ctx, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("# dims: x | attrs: v\n")
        with pytest.raises(ValueError):
            csv_to_array_rdd(ctx, path, (2,))


class TestArrayArithmetic:
    def test_scalar_ops(self, ctx):
        arr, data, valid = random_array(ctx, seed=4)
        out = (arr * 2 + 1).collect_dense()[0]
        assert np.allclose(out[valid], data[valid] * 2 + 1)
        out = (1 - arr).collect_dense()[0]
        assert np.allclose(out[valid], 1 - data[valid])
        out = (-arr).collect_dense()[0]
        assert np.allclose(out[valid], -data[valid])
        out = abs(arr - 1).collect_dense()[0]
        assert np.allclose(out[valid], np.abs(data[valid] - 1))

    def test_array_ops_use_null_propagation(self, ctx):
        a, da, va = random_array(ctx, seed=5)
        b, db, vb = random_array(ctx, seed=6)
        total = a + b
        _values, valid = total.collect_dense()
        # 1 + null = null (Section II-B): only both-valid cells survive
        assert np.array_equal(valid, va & vb)

    def test_division(self, ctx):
        a, da, va = random_array(ctx, seed=7)
        out = (a / 2).collect_dense()[0]
        assert np.allclose(out[va], da[va] / 2)


class TestDatasetAttributes:
    def test_with_attribute(self, ctx):
        arr, data, valid = random_array(ctx, seed=8)
        extra = ArrayRDD.from_numpy(ctx, data + 5, (8, 8), valid=valid)
        ds = SpangleDataset({"a": arr}).with_attribute("b", extra)
        assert set(ds.attribute_names) == {"a", "b"}
        assert ds.count_valid("b") == int(valid.sum())

    def test_with_attribute_under_filter(self, ctx):
        arr, data, valid = random_array(ctx, density=0.9, seed=9)
        extra = ArrayRDD.from_numpy(ctx, data, (8, 8), valid=valid)
        ds = SpangleDataset({"a": arr}).filter("a", lambda xs: xs > 0.5)
        ds = ds.with_attribute("b", extra)
        _v, got_valid = ds.evaluate("b").collect_dense()
        expected = valid & (np.where(valid, data, 0) > 0.5)
        assert np.array_equal(got_valid, expected)

    def test_duplicate_and_geometry_rejected(self, ctx):
        from repro.errors import AttributeMismatchError, ShapeMismatchError

        arr, _d, _v = random_array(ctx, seed=10)
        ds = SpangleDataset({"a": arr})
        with pytest.raises(AttributeMismatchError):
            ds.with_attribute("a", arr)
        other = ArrayRDD.from_numpy(ctx, np.ones((4, 4)), (2, 2))
        with pytest.raises(ShapeMismatchError):
            ds.with_attribute("b", other)

    def test_drop_attribute(self, ctx):
        from repro.errors import AttributeMismatchError

        arr, _d, _v = random_array(ctx, seed=11)
        extra, _d2, _v2 = random_array(ctx, seed=12)
        ds = SpangleDataset({"a": arr, "b": extra})
        dropped = ds.drop_attribute("b")
        assert dropped.attribute_names == ["a"]
        with pytest.raises(AttributeMismatchError):
            dropped.drop_attribute("a")
        with pytest.raises(AttributeMismatchError):
            dropped.drop_attribute("zzz")

    def test_derive(self, ctx):
        arr, data, valid = random_array(ctx, seed=13)
        ds = SpangleDataset({"raw": arr}).derive(
            "log", "raw", lambda xs: np.log1p(xs))
        values, got_valid = ds.evaluate("log").collect_dense()
        assert np.array_equal(got_valid, valid)
        assert np.allclose(values[valid], np.log1p(data[valid]))
        assert ds.attribute("log").meta.attribute == "log"
