"""Tests for the CSV cell format and the SNF binary container."""

import numpy as np
import pytest

from repro.engine import ClusterContext
from repro.errors import IngestError
from repro.io import read_csv_cells, read_snf, write_csv_cells, write_snf
from repro.io.snf import MAGIC, load_snf_as_dataset


class TestCSV:
    def test_roundtrip_single_attribute(self, tmp_path):
        path = tmp_path / "cells.csv"
        records = [((i, j), float(i * 10 + j))
                   for i in range(5) for j in range(4)]
        count = write_csv_cells(path, ("x", "y"), ("v",), records)
        assert count == 20
        dims, attrs, back = read_csv_cells(path)
        assert dims == ("x", "y")
        assert attrs == ("v",)
        assert [(c, v[0]) for c, v in back] == records

    def test_roundtrip_multi_attribute(self, tmp_path):
        path = tmp_path / "cells.csv"
        records = [((0, 0), (1.5, -2.5)), ((1, 2), (3.0, 4.0))]
        write_csv_cells(path, ("x", "y"), ("a", "b"), records)
        _dims, attrs, back = read_csv_cells(path)
        assert attrs == ("a", "b")
        assert back[0] == ((0, 0), (1.5, -2.5))

    def test_value_arity_check_on_write(self, tmp_path):
        with pytest.raises(IngestError):
            write_csv_cells(tmp_path / "x.csv", ("x",), ("a", "b"),
                            [((0,), (1.0,))])

    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1,2,3\n")
        with pytest.raises(IngestError):
            read_csv_cells(path)

    def test_field_count_mismatch(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("# dims: x, y | attrs: v\n1,2\n")
        with pytest.raises(IngestError) as excinfo:
            read_csv_cells(path)
        assert ":2:" in str(excinfo.value)  # line number in message

    def test_non_numeric_field(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("# dims: x | attrs: v\noops,1.0\n")
        with pytest.raises(IngestError):
            read_csv_cells(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "cells.csv"
        path.write_text("# dims: x | attrs: v\n\n1,2.0\n\n")
        _d, _a, back = read_csv_cells(path)
        assert back == [((1,), (2.0,))]

    def test_ingest_into_array(self, tmp_path):
        from repro.core.ingest import array_rdd_from_records
        from repro.core.metadata import ArrayMetadata

        path = tmp_path / "cells.csv"
        records = [((i, j), float(i + j))
                   for i in range(4) for j in range(4) if i != j]
        write_csv_cells(path, ("x", "y"), ("v",), records)
        _dims, _attrs, back = read_csv_cells(path)
        ctx = ClusterContext(2)
        arr = array_rdd_from_records(
            ctx, [(c, v[0]) for c, v in back],
            ArrayMetadata((4, 4), (2, 2)))
        assert arr.count_valid() == len(records)
        assert arr.get((0, 1)) == 1.0
        assert arr.get((1, 1)) is None


class TestSNF:
    def _sample(self):
        rng = np.random.default_rng(0)
        values = rng.random((10, 8, 3))
        valid = rng.random((10, 8, 3)) < 0.5
        return values, valid

    def test_roundtrip(self, tmp_path):
        values, valid = self._sample()
        path = tmp_path / "grid.snf"
        write_snf(path, {"lat": 10, "lon": 8, "time": 3},
                  {"chl": values}, valid)
        dims, attrs = read_snf(path)
        assert dims == {"lat": 10, "lon": 8, "time": 3}
        got_values, got_valid = attrs["chl"]
        assert np.array_equal(got_valid, valid)
        assert np.allclose(got_values[valid], values[valid])

    def test_multiple_attributes(self, tmp_path):
        values, valid = self._sample()
        path = tmp_path / "grid.snf"
        write_snf(path, {"lat": 10, "lon": 8, "time": 3},
                  {"a": values, "b": values * 2}, valid)
        _dims, attrs = read_snf(path)
        assert set(attrs) == {"a", "b"}
        assert np.allclose(attrs["b"][0][valid], values[valid] * 2)

    def test_default_validity_all_true(self, tmp_path):
        path = tmp_path / "grid.snf"
        write_snf(path, {"x": 4}, {"v": np.arange(4.0)})
        _dims, attrs = read_snf(path)
        assert attrs["v"][1].all()

    def test_nan_invalid_on_read(self, tmp_path):
        path = tmp_path / "grid.snf"
        data = np.array([1.0, np.nan, 3.0])
        write_snf(path, {"x": 3}, {"v": data})
        _dims, attrs = read_snf(path)
        assert list(attrs["v"][1]) == [True, False, True]

    def test_shape_validation(self, tmp_path):
        with pytest.raises(IngestError):
            write_snf(tmp_path / "x.snf", {"x": 4},
                      {"v": np.zeros(5)})
        with pytest.raises(IngestError):
            write_snf(tmp_path / "x.snf", {"x": 4},
                      {"v": np.zeros(4)}, valid=np.ones(5, dtype=bool))

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.snf"
        path.write_bytes(b"NOTSNF00" + b"\x00" * 64)
        with pytest.raises(IngestError):
            read_snf(path)

    def test_truncated_payload(self, tmp_path):
        path = tmp_path / "trunc.snf"
        write_snf(path, {"x": 100}, {"v": np.zeros(100)})
        data = path.read_bytes()
        path.write_bytes(data[:len(MAGIC) + 8 + 50])
        with pytest.raises(IngestError):
            read_snf(path)

    def test_load_as_dataset(self, tmp_path):
        values, valid = self._sample()
        path = tmp_path / "grid.snf"
        write_snf(path, {"lat": 10, "lon": 8, "time": 3},
                  {"a": values, "b": values + 1}, valid)
        ctx = ClusterContext(2)
        ds = load_snf_as_dataset(ctx, path, (5, 4, 1))
        assert set(ds.attribute_names) == {"a", "b"}
        assert ds.count_valid("a") == int(valid.sum())
        assert ds.meta.dim_names == ("lat", "lon", "time")
