"""Tests for the ChunkStore (chunk-granular persistence)."""

import json

import numpy as np
import pytest

from repro.core import ArrayRDD
from repro.engine import ClusterContext
from repro.errors import IngestError
from repro.io.store import load_array, load_manifest, save_array


@pytest.fixture()
def ctx():
    return ClusterContext(num_executors=4, default_parallelism=4)


def random_array(ctx, shape=(40, 40), chunk=(16, 16), density=0.3,
                 seed=0):
    rng = np.random.default_rng(seed)
    data = rng.random(shape)
    valid = rng.random(shape) < density
    return ArrayRDD.from_numpy(
        ctx, data, chunk, valid=valid, starts=(10, 20),
        dim_names=("lat", "lon"), attribute="chl"), data, valid


class TestSaveLoad:
    def test_roundtrip(self, ctx, tmp_path):
        arr, data, valid = random_array(ctx)
        written = save_array(arr, tmp_path / "store")
        assert written == arr.num_chunks_materialized()
        back = load_array(ctx, tmp_path / "store")
        assert back.meta.shape == arr.meta.shape
        assert back.meta.starts == (10, 20)
        assert back.meta.dim_names == ("lat", "lon")
        assert back.meta.attribute == "chl"
        values, got_valid = back.collect_dense()
        assert np.array_equal(got_valid, valid)
        assert np.allclose(values[valid], data[valid])

    def test_never_densifies(self, ctx, tmp_path):
        # a hyper-sparse huge-logical array must store ~nnz bytes
        data = np.zeros((2000, 2000))
        valid = np.zeros((2000, 2000), dtype=bool)
        for i in range(0, 2000, 400):
            valid[i, i] = True
            data[i, i] = float(i)
        arr = ArrayRDD.from_numpy(ctx, data, (500, 500), valid=valid)
        save_array(arr, tmp_path / "sparse")
        stored = sum(p.stat().st_size
                     for p in (tmp_path / "sparse").glob("*.npz"))
        assert stored < 10_000  # nowhere near the 32 MB dense size

    def test_region_pruning(self, ctx, tmp_path):
        arr, data, valid = random_array(ctx, density=1.0, seed=1)
        save_array(arr, tmp_path / "store")
        before = ctx.metrics.snapshot()
        window = load_array(ctx, tmp_path / "store",
                            region=((10, 20), (25, 35)))
        count = window.count_valid()
        delta = ctx.metrics.snapshot() - before
        assert count == 16 * 16
        # only one 16x16 chunk file was read from disk
        single_chunk_bytes = next(
            (tmp_path / "store").glob("chunk_*.npz")).stat().st_size
        assert delta.disk_read_bytes <= single_chunk_bytes * 1.5

    def test_save_overwrites_stale_chunks(self, ctx, tmp_path):
        arr, _d, _v = random_array(ctx, density=1.0, seed=2)
        save_array(arr, tmp_path / "store")
        smaller = arr.subarray((10, 20), (20, 30))
        written = save_array(smaller, tmp_path / "store")
        files = list((tmp_path / "store").glob("chunk_*.npz"))
        assert len(files) == written
        back = load_array(ctx, tmp_path / "store")
        assert back.count_valid() == smaller.count_valid()

    def test_disk_io_metered(self, ctx, tmp_path):
        arr, _d, _v = random_array(ctx, seed=3)
        before = ctx.metrics.snapshot()
        save_array(arr, tmp_path / "store")
        delta = ctx.metrics.snapshot() - before
        assert delta.disk_write_bytes > 0
        before = ctx.metrics.snapshot()
        load_array(ctx, tmp_path / "store").count_valid()
        delta = ctx.metrics.snapshot() - before
        assert delta.disk_read_bytes > 0

    def test_lazy_read_in_tasks(self, ctx, tmp_path):
        arr, _d, _v = random_array(ctx, seed=4)
        save_array(arr, tmp_path / "store")
        before = ctx.metrics.snapshot()
        loaded = load_array(ctx, tmp_path / "store")
        # building the RDD reads nothing; the action does
        assert (ctx.metrics.snapshot() - before).disk_read_bytes == 0
        loaded.count_valid()
        assert (ctx.metrics.snapshot() - before).disk_read_bytes > 0


class TestManifest:
    def test_missing_manifest(self, ctx, tmp_path):
        with pytest.raises(IngestError):
            load_array(ctx, tmp_path)

    def test_corrupt_manifest(self, ctx, tmp_path):
        (tmp_path / "manifest.json").write_text("{nope")
        with pytest.raises(IngestError):
            load_array(ctx, tmp_path)

    def test_version_check(self, ctx, tmp_path):
        (tmp_path / "manifest.json").write_text(
            json.dumps({"format_version": 99}))
        with pytest.raises(IngestError):
            load_array(ctx, tmp_path)

    def test_missing_chunk_file(self, ctx, tmp_path):
        arr, _d, _v = random_array(ctx, seed=5)
        save_array(arr, tmp_path / "store")
        victim = next((tmp_path / "store").glob("chunk_*.npz"))
        victim.unlink()
        from repro.errors import TaskFailure

        with pytest.raises(TaskFailure) as excinfo:
            load_array(ctx, tmp_path / "store").count_valid()
        assert isinstance(excinfo.value.cause, IngestError)

    def test_manifest_contents(self, ctx, tmp_path):
        arr, _d, _v = random_array(ctx, seed=6)
        save_array(arr, tmp_path / "store")
        manifest = load_manifest(tmp_path / "store")
        assert manifest["attribute"] == "chl"
        assert manifest["chunks"] == sorted(manifest["chunks"])
