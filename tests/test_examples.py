"""Regression test: every shipped example runs to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES,
                         ids=[p.stem for p in EXAMPLES])
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=300)
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip()  # examples narrate their work


def test_all_examples_discovered():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "chlorophyll_analysis", "pagerank_webgraph",
            "logistic_regression", "sky_survey_pipeline",
            "interactive_analysis"} <= names
