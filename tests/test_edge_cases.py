"""Cross-cutting edge cases: dtypes, dimensionalities, tiny/degenerate
arrays, threaded execution, memory pressure."""

import numpy as np
import pytest

from repro.core import ArrayRDD, ChunkMode
from repro.core.chunk import Chunk
from repro.engine import ClusterContext, StorageLevel
from repro.matrix import SpangleMatrix, SpangleVector


@pytest.fixture()
def ctx():
    return ClusterContext(num_executors=4, default_parallelism=4)


class TestDtypes:
    def test_integer_array_roundtrip(self, ctx):
        data = np.arange(64, dtype=np.int32).reshape(8, 8)
        arr = ArrayRDD.from_numpy(ctx, data, (4, 4))
        values, valid = arr.collect_dense(fill=0)
        assert valid.all()
        assert np.array_equal(values.astype(np.int64),
                              data.astype(np.int64))
        assert arr.meta.dtype == np.int32

    def test_integer_chunk_access(self):
        chunk = Chunk.from_dense(np.array([5, 0, 7], dtype=np.int64),
                                 np.array([True, False, True]))
        assert chunk.get(0) == 5
        assert chunk.get(1) is None
        assert chunk.values().dtype == np.int64

    def test_integer_aggregation(self, ctx):
        data = np.arange(16, dtype=np.int64).reshape(4, 4)
        arr = ArrayRDD.from_numpy(ctx, data, (2, 2))
        assert arr.sum() == 120

    def test_negative_values_are_valid_matrix_cells(self, ctx):
        dense = np.array([[0.0, -3.0], [2.0, 0.0]])
        m = SpangleMatrix.from_numpy(ctx, dense, (2, 2))
        assert m.nnz() == 2
        assert np.allclose(m.to_numpy(), dense)

    def test_float32(self, ctx):
        data = np.ones((4, 4), dtype=np.float32)
        arr = ArrayRDD.from_numpy(ctx, data, (2, 2))
        assert arr.count_valid() == 16


class TestDimensionalities:
    def test_1d_array(self, ctx):
        data = np.arange(100.0)
        arr = ArrayRDD.from_numpy(ctx, data, (16,))
        assert arr.count_valid() == 100
        assert arr.get((42,)) == 42.0
        sub = arr.subarray((10,), (19,))
        assert sub.count_valid() == 10
        assert sub.aggregate("sum") == sum(range(10, 20))

    def test_4d_array(self, ctx):
        rng = np.random.default_rng(0)
        data = rng.random((4, 5, 6, 3))
        arr = ArrayRDD.from_numpy(ctx, data, (2, 3, 3, 2))
        values, valid = arr.collect_dense()
        assert valid.all()
        assert np.allclose(values, data)
        assert arr.get((3, 4, 5, 2)) == pytest.approx(data[3, 4, 5, 2])

    def test_4d_aggregate_by(self, ctx):
        rng = np.random.default_rng(1)
        data = rng.random((4, 4, 4, 4))
        arr = ArrayRDD.from_numpy(ctx, data, (2, 2, 2, 2))
        by_last = arr.aggregate_by([3], "sum")
        values, _valid = by_last.collect_dense()
        assert np.allclose(values, data.sum(axis=(0, 1, 2)))

    def test_single_cell_array(self, ctx):
        arr = ArrayRDD.from_numpy(ctx, np.array([[7.0]]), (1, 1))
        assert arr.count_valid() == 1
        assert arr.get((0, 0)) == 7.0
        assert arr.aggregate("avg") == 7.0

    def test_single_chunk_covers_array(self, ctx):
        rng = np.random.default_rng(2)
        data = rng.random((10, 10))
        arr = ArrayRDD.from_numpy(ctx, data, (100, 100))
        assert arr.meta.num_chunks == 1
        assert np.allclose(arr.collect_dense()[0], data)


class TestDegenerateShapes:
    def test_row_vector_matrix(self, ctx):
        dense = np.arange(1.0, 9.0).reshape(1, 8)
        m = SpangleMatrix.from_numpy(ctx, dense, (1, 4))
        v = SpangleVector(np.ones(8))
        assert np.allclose(m.dot_vector(v).data, dense @ np.ones(8))

    def test_column_vector_matrix_multiply(self, ctx):
        col = SpangleMatrix.from_numpy(ctx, np.arange(1.0, 5.0)
                                       .reshape(4, 1), (2, 1))
        row = SpangleMatrix.from_numpy(ctx, np.arange(1.0, 4.0)
                                       .reshape(1, 3), (1, 3))
        outer = col.multiply(row)
        assert np.allclose(outer.to_numpy(),
                           np.outer(np.arange(1.0, 5.0),
                                    np.arange(1.0, 4.0)))

    def test_1x1_matmul(self, ctx):
        a = SpangleMatrix.from_numpy(ctx, np.array([[3.0]]), (1, 1))
        b = SpangleMatrix.from_numpy(ctx, np.array([[4.0]]), (1, 1))
        assert a.multiply(b).to_numpy()[0, 0] == 12.0

    def test_rectangular_blocks(self, ctx):
        rng = np.random.default_rng(3)
        a = rng.random((24, 18))
        b = rng.random((18, 30))
        ma = SpangleMatrix.from_numpy(ctx, a, (7, 5),
                                      sparse_zeros=False)
        mb = SpangleMatrix.from_numpy(ctx, b, (5, 11),
                                      sparse_zeros=False)
        assert np.allclose(ma.multiply(mb).to_numpy(), a @ b)


class TestSuperSparseAccess:
    def test_get_at_word_boundaries(self):
        # positions straddling 64-bit word edges in the hierarchy
        positions = [0, 63, 64, 127, 128, 4095]
        chunk = Chunk.from_sparse(
            4096, positions, np.arange(1.0, 7.0),
            mode=ChunkMode.SUPER_SPARSE)
        for expected, position in zip(np.arange(1.0, 7.0), positions):
            assert chunk.get(position) == expected
        assert chunk.get(1) is None
        assert chunk.get(65) is None

    def test_last_cell_of_chunk(self):
        chunk = Chunk.from_sparse(1000, [999], [1.5],
                                  mode=ChunkMode.SUPER_SPARSE)
        assert chunk.get(999) == 1.5
        assert chunk.get(998) is None


class TestThreadedExecution:
    def test_array_pipeline_threaded(self):
        serial = ClusterContext(num_executors=4)
        threaded = ClusterContext(num_executors=4, use_threads=True)
        rng = np.random.default_rng(4)
        data = rng.random((64, 64))
        valid = rng.random((64, 64)) < 0.4
        results = []
        for context in (serial, threaded):
            arr = ArrayRDD.from_numpy(context, data, (16, 16),
                                      valid=valid)
            results.append(
                arr.filter(lambda xs: xs > 0.5).aggregate("sum"))
        assert results[0] == pytest.approx(results[1])

    def test_shuffle_threaded(self):
        threaded = ClusterContext(num_executors=4, use_threads=True)
        pairs = threaded.parallelize(
            [(i % 5, i) for i in range(200)], 8)
        got = dict(pairs.reduce_by_key(lambda a, b: a + b).collect())
        expected = {}
        for i in range(200):
            expected[i % 5] = expected.get(i % 5, 0) + i
        assert got == expected


class TestMemoryPressure:
    def test_array_workload_under_tight_cache(self):
        ctx = ClusterContext(num_executors=2,
                             cache_budget_bytes=40_000)
        rng = np.random.default_rng(5)
        data = rng.random((128, 128))
        arr = ArrayRDD.from_numpy(ctx, data, (32, 32))
        arr.rdd.persist(StorageLevel.MEMORY_AND_DISK)
        first = arr.aggregate("sum")
        second = arr.aggregate("sum")
        assert first == pytest.approx(second)
        assert first == pytest.approx(data.sum())
        # pressure was real: something was evicted or spilled
        assert (ctx.metrics.cache_evictions > 0
                or ctx.metrics.disk_write_bytes > 0)

    def test_results_survive_eviction_without_spill(self):
        ctx = ClusterContext(num_executors=2,
                             cache_budget_bytes=20_000)
        rng = np.random.default_rng(6)
        data = rng.random((128, 128))
        arr = ArrayRDD.from_numpy(ctx, data, (16, 16)).materialize()
        assert arr.aggregate("sum") == pytest.approx(data.sum())


class TestNonZeroStarts:
    def test_negative_coordinates(self, ctx):
        data = np.arange(16.0).reshape(4, 4)
        arr = ArrayRDD.from_numpy(ctx, data, (2, 2), starts=(-2, -2))
        assert arr.get((-2, -2)) == 0.0
        assert arr.get((1, 1)) == 15.0
        sub = arr.subarray((-1, -1), (0, 0))
        assert sub.count_valid() == 4

    def test_csv_roundtrip_negative_coords(self, ctx, tmp_path):
        from repro.io.export import array_rdd_to_csv, csv_to_array_rdd

        data = np.ones((3, 3))
        arr = ArrayRDD.from_numpy(ctx, data, (2, 2), starts=(-5, -5))
        path = tmp_path / "neg.csv"
        array_rdd_to_csv(arr, path)
        back = csv_to_array_rdd(ctx, path, (2, 2))
        assert back.meta.starts == (-5, -5)
        assert back.count_valid() == 9
