"""Tests for the sequential cursor and the hierarchical bitmask."""

import numpy as np
import pytest

from repro.bitmask import Bitmask, HierarchicalBitmask, SequentialCursor
from repro.errors import ArrayError


class TestSequentialCursor:
    def test_rank_matches_bitmask(self):
        rng = np.random.default_rng(2)
        flags = rng.random(2000) < 0.4
        mask = Bitmask.from_bools(flags)
        cursor = SequentialCursor(mask)
        for pos in [0, 1, 5, 63, 64, 100, 640, 1999, 2000]:
            assert cursor.rank_at(pos) == int(flags[:pos].sum())

    def test_backwards_raises(self):
        cursor = SequentialCursor(Bitmask.zeros(100))
        cursor.rank_at(50)
        with pytest.raises(ArrayError):
            cursor.rank_at(49)

    def test_next_valid(self):
        mask = Bitmask.from_indices(300, [5, 64, 128, 299])
        cursor = SequentialCursor(mask)
        assert cursor.next_valid(0) == 5
        assert cursor.next_valid(5) == 5
        assert cursor.next_valid(6) == 64
        assert cursor.next_valid(129) == 299
        assert cursor.next_valid(300) == -1

    def test_next_valid_empty(self):
        cursor = SequentialCursor(Bitmask.zeros(128))
        assert cursor.next_valid(0) == -1

    def test_iter_valid_yields_payload_slots(self):
        mask = Bitmask.from_indices(200, [3, 70, 150])
        pairs = list(SequentialCursor(mask).iter_valid())
        assert pairs == [(3, 0), (70, 1), (150, 2)]

    def test_iter_valid_dense(self):
        mask = Bitmask.ones(130)
        pairs = list(SequentialCursor(mask).iter_valid())
        assert pairs == [(i, i) for i in range(130)]


class TestHierarchicalBitmask:
    def _random_mask(self, n, density, seed):
        rng = np.random.default_rng(seed)
        return Bitmask.from_bools(rng.random(n) < density)

    def test_roundtrip(self):
        flat = self._random_mask(5000, 0.001, seed=3)
        hier = HierarchicalBitmask.from_bitmask(flat)
        assert hier.to_bitmask() == flat

    def test_get_matches_flat(self):
        flat = self._random_mask(1000, 0.01, seed=4)
        hier = HierarchicalBitmask.from_bitmask(flat)
        for pos in range(0, 1000, 7):
            assert hier.get(pos) == flat.get(pos)

    def test_get_out_of_range(self):
        hier = HierarchicalBitmask.from_bitmask(Bitmask.zeros(10))
        with pytest.raises(ArrayError):
            hier.get(10)

    def test_count_matches(self):
        flat = self._random_mask(8000, 0.002, seed=5)
        hier = HierarchicalBitmask.from_bitmask(flat)
        assert hier.count() == flat.count()

    def test_rank_matches_flat(self):
        flat = self._random_mask(4096, 0.005, seed=6)
        hier = HierarchicalBitmask.from_bitmask(flat)
        for pos in [0, 1, 64, 65, 100, 2048, 4095, 4096]:
            assert hier.rank(pos) == flat.rank(pos)

    def test_super_sparse_is_smaller(self):
        # 64k cells, 5 valid: hierarchical must beat flat by a wide margin
        flat = Bitmask.from_indices(65_536, [1, 10_000, 30_000, 50_000,
                                             65_000])
        hier = HierarchicalBitmask.from_bitmask(flat)
        assert hier.nbytes < flat.nbytes / 10

    def test_dense_mask_is_larger_hierarchically(self):
        # when every word is non-zero the hierarchy only adds overhead —
        # this is why dense/sparse chunks keep the flat form
        flat = Bitmask.ones(65_536)
        hier = HierarchicalBitmask.from_bitmask(flat)
        assert hier.nbytes > flat.nbytes

    def test_indices(self):
        flat = Bitmask.from_indices(1000, [0, 500, 999])
        hier = HierarchicalBitmask.from_bitmask(flat)
        assert list(hier.indices()) == [0, 500, 999]

    def test_empty(self):
        hier = HierarchicalBitmask.from_bitmask(Bitmask.zeros(640))
        assert hier.count() == 0
        assert hier.nbytes < Bitmask.zeros(640).nbytes

    def test_density(self):
        hier = HierarchicalBitmask.from_bools([True] + [False] * 9)
        assert hier.density() == pytest.approx(0.1)

    def test_equality(self):
        a = HierarchicalBitmask.from_bools([True, False, True])
        b = HierarchicalBitmask.from_bools([True, False, True])
        assert a == b
