"""Property-based tests (hypothesis) for bitmask invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitmask import Bitmask, HierarchicalBitmask, SequentialCursor
from repro.bitmask.popcount import (
    popcount_words_builtin,
    popcount_words_naive,
    popcount_words_vectorized,
)

bool_arrays = st.lists(st.booleans(), min_size=0, max_size=600) \
                .map(lambda bits: np.array(bits, dtype=bool))

word_arrays = st.lists(
    st.integers(min_value=0, max_value=2**64 - 1), min_size=0, max_size=40
).map(lambda ws: np.array(ws, dtype=np.uint64))


@given(word_arrays)
def test_popcount_implementations_agree(words):
    expected = popcount_words_vectorized(words)
    assert popcount_words_naive(words) == expected
    assert popcount_words_builtin(words) == expected


@given(bool_arrays)
def test_bools_roundtrip(flags):
    assert np.array_equal(Bitmask.from_bools(flags).to_bools(), flags)


@given(bool_arrays)
def test_count_equals_sum(flags):
    assert Bitmask.from_bools(flags).count() == int(flags.sum())


@given(bool_arrays, st.integers(min_value=0, max_value=700))
def test_rank_equals_prefix_sum(flags, pos):
    mask = Bitmask.from_bools(flags)
    clamped = min(pos, flags.size)
    expected = int(flags[:clamped].sum())
    for strategy in ("naive", "builtin", "vectorized", "milestone"):
        assert mask.rank(pos, strategy) == expected


@given(bool_arrays)
def test_rank_select_roundtrip(flags):
    mask = Bitmask.from_bools(flags)
    for k in range(mask.count()):
        pos = mask.select(k)
        assert mask.get(pos)
        assert mask.rank(pos) == k


@given(bool_arrays, bool_arrays)
def test_de_morgan(a_flags, b_flags):
    n = min(a_flags.size, b_flags.size)
    a = Bitmask.from_bools(a_flags[:n])
    b = Bitmask.from_bools(b_flags[:n])
    assert ~(a & b) == (~a | ~b)
    assert ~(a | b) == (~a & ~b)


@given(bool_arrays)
def test_invert_involution(flags):
    mask = Bitmask.from_bools(flags)
    assert ~~mask == mask


@given(bool_arrays, bool_arrays)
def test_and_or_counts(a_flags, b_flags):
    n = min(a_flags.size, b_flags.size)
    a = Bitmask.from_bools(a_flags[:n])
    b = Bitmask.from_bools(b_flags[:n])
    # inclusion-exclusion
    assert (a | b).count() == a.count() + b.count() - (a & b).count()


@settings(max_examples=50)
@given(bool_arrays)
def test_hierarchical_roundtrip_and_rank(flags):
    flat = Bitmask.from_bools(flags)
    hier = HierarchicalBitmask.from_bitmask(flat)
    assert hier.to_bitmask() == flat
    assert hier.count() == flat.count()
    for pos in range(0, flags.size + 1, 17):
        assert hier.rank(pos) == flat.rank(pos)


@settings(max_examples=50)
@given(bool_arrays, st.lists(st.integers(min_value=0, max_value=700),
                             min_size=1, max_size=10))
def test_cursor_matches_rank_on_sorted_positions(flags, positions):
    mask = Bitmask.from_bools(flags)
    cursor = SequentialCursor(mask)
    for pos in sorted(positions):
        assert cursor.rank_at(pos) == mask.rank(pos, "vectorized")


@settings(max_examples=50)
@given(bool_arrays)
def test_cursor_iter_valid_matches_indices(flags):
    mask = Bitmask.from_bools(flags)
    pairs = list(SequentialCursor(mask).iter_valid())
    assert [p for p, _r in pairs] == list(mask.indices())
    assert [r for _p, r in pairs] == list(range(mask.count()))
