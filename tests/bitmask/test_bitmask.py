"""Unit tests for the flat Bitmask."""

import numpy as np
import pytest

from repro.bitmask import Bitmask
from repro.errors import ArrayError


class TestConstruction:
    def test_zeros(self):
        mask = Bitmask.zeros(100)
        assert len(mask) == 100
        assert mask.count() == 0
        assert not mask.any()

    def test_ones(self):
        mask = Bitmask.ones(100)
        assert mask.count() == 100
        assert mask.all()

    def test_ones_tail_is_masked(self):
        # 70 bits -> 2 words; the last word must not carry phantom bits
        mask = Bitmask.ones(70)
        assert mask.count() == 70

    def test_from_bools_roundtrip(self):
        flags = np.array([True, False, True, True, False])
        mask = Bitmask.from_bools(flags)
        assert np.array_equal(mask.to_bools(), flags)

    def test_from_indices(self):
        mask = Bitmask.from_indices(10, [0, 3, 9])
        assert list(mask.indices()) == [0, 3, 9]

    def test_empty(self):
        mask = Bitmask.zeros(0)
        assert mask.count() == 0
        assert mask.to_bools().size == 0
        assert mask.density() == 0.0

    def test_negative_length_rejected(self):
        with pytest.raises(ArrayError):
            Bitmask(-1)

    def test_word_count_validation(self):
        with pytest.raises(ArrayError):
            Bitmask(128, np.zeros(1, dtype=np.uint64))

    def test_copy_is_independent(self):
        mask = Bitmask.from_indices(10, [1])
        dup = mask.copy()
        dup.set(2)
        assert not mask.get(2)


class TestBitAccess:
    def test_set_get_clear(self):
        mask = Bitmask.zeros(130)
        mask.set(0)
        mask.set(64)
        mask.set(129)
        assert mask.get(0) and mask.get(64) and mask.get(129)
        assert not mask.get(1)
        mask.clear(64)
        assert not mask.get(64)
        assert mask.count() == 2

    def test_out_of_range(self):
        mask = Bitmask.zeros(8)
        with pytest.raises(ArrayError):
            mask.get(8)
        with pytest.raises(ArrayError):
            mask.set(-1)

    def test_set_range(self):
        mask = Bitmask.zeros(100)
        mask.set_range(10, 20)
        assert mask.count() == 10
        assert mask.get(10) and mask.get(19) and not mask.get(20)
        mask.set_range(15, 25, value=False)
        assert mask.count() == 5

    def test_set_range_clamps(self):
        mask = Bitmask.zeros(10)
        mask.set_range(-5, 100)
        assert mask.count() == 10


class TestCounting:
    @pytest.mark.parametrize("strategy",
                             ["naive", "builtin", "vectorized"])
    def test_count_strategies_agree(self, strategy):
        rng = np.random.default_rng(0)
        mask = Bitmask.from_bools(rng.random(1000) < 0.3)
        assert mask.count(strategy) == mask.count("vectorized")

    def test_count_unknown_strategy(self):
        with pytest.raises(ArrayError):
            Bitmask.zeros(8).count("avx512")

    @pytest.mark.parametrize("strategy",
                             ["naive", "builtin", "vectorized", "milestone"])
    def test_rank_strategies_agree(self, strategy):
        rng = np.random.default_rng(1)
        flags = rng.random(5000) < 0.2
        mask = Bitmask.from_bools(flags)
        for pos in (0, 1, 63, 64, 65, 1000, 4999, 5000):
            assert mask.rank(pos, strategy) == int(flags[:pos].sum())

    def test_rank_beyond_length_equals_count(self):
        mask = Bitmask.from_indices(100, [5, 50, 99])
        assert mask.rank(10_000) == 3

    def test_rank_select_inverse(self):
        mask = Bitmask.from_indices(200, [3, 64, 65, 190])
        for k in range(4):
            pos = mask.select(k)
            assert mask.rank(pos) == k
            assert mask.get(pos)

    def test_select_out_of_range(self):
        mask = Bitmask.from_indices(10, [1])
        with pytest.raises(ArrayError):
            mask.select(1)

    def test_density(self):
        mask = Bitmask.from_indices(10, [0, 1])
        assert mask.density() == pytest.approx(0.2)

    def test_rank_after_mutation_invalidates_milestones(self):
        mask = Bitmask.zeros(10_000)
        assert mask.rank(10_000, "milestone") == 0
        mask.set(5)
        assert mask.rank(10_000, "milestone") == 1


class TestAlgebra:
    def test_and(self):
        a = Bitmask.from_indices(10, [1, 2, 3])
        b = Bitmask.from_indices(10, [2, 3, 4])
        assert list((a & b).indices()) == [2, 3]

    def test_or(self):
        a = Bitmask.from_indices(10, [1])
        b = Bitmask.from_indices(10, [4])
        assert list((a | b).indices()) == [1, 4]

    def test_xor(self):
        a = Bitmask.from_indices(10, [1, 2])
        b = Bitmask.from_indices(10, [2, 3])
        assert list((a ^ b).indices()) == [1, 3]

    def test_invert_respects_length(self):
        a = Bitmask.from_indices(70, [0])
        inverted = ~a
        assert inverted.count() == 69
        assert not inverted.get(0)

    def test_and_not(self):
        a = Bitmask.from_indices(10, [1, 2, 3])
        b = Bitmask.from_indices(10, [2])
        assert list(a.and_not(b).indices()) == [1, 3]

    def test_length_mismatch(self):
        with pytest.raises(ArrayError):
            Bitmask.zeros(10) & Bitmask.zeros(11)

    def test_equality(self):
        assert Bitmask.from_indices(10, [1]) == Bitmask.from_indices(10, [1])
        assert Bitmask.from_indices(10, [1]) != Bitmask.from_indices(10, [2])

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Bitmask.zeros(1))


class TestSizing:
    def test_nbytes_is_word_array(self):
        assert Bitmask.zeros(64).nbytes == 8
        assert Bitmask.zeros(65).nbytes == 16

    def test_one_bit_per_cell(self):
        # the paper's pitch: validity costs 1 bit/cell vs 8 bytes/cell
        mask = Bitmask.zeros(64_000)
        assert mask.nbytes == 8_000
