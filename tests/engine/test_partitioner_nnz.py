"""Contract tests for :class:`NnzBalancedPartitioner`.

The nnz-balanced partitioner backs the sparse execution tier's
placement decisions, so three contracts matter: the vectorized
``partition_array`` must agree with scalar ``partition`` on any key
column (the columnar shuffle depends on it), instances must survive
pickling to process workers, and equality/hash must make two
instances packed from the same weights interchangeable so the
engine's same-partitioner fast paths keep firing.
"""

import pickle
from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import ClusterContext, NnzBalancedPartitioner
from repro.engine.partitioner import _HASH_MODULUS
from repro.errors import EngineError


def lpt(weights, parts):
    return NnzBalancedPartitioner.from_weights(weights, parts)


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------

def test_assignment_targets_validated():
    with pytest.raises(EngineError):
        NnzBalancedPartitioner(2, {0: 0, 1: 2})
    with pytest.raises(EngineError):
        NnzBalancedPartitioner(2, {0: -1})


def test_from_weights_is_deterministic_and_total():
    weights = {cid: float((cid * 7919) % 97 + 1) for cid in range(40)}
    a = lpt(weights, 4)
    b = lpt(dict(reversed(list(weights.items()))), 4)
    assert a == b
    assert hash(a) == hash(b)
    assert {a.partition(cid) for cid in weights} <= set(range(4))


def test_lpt_beats_hash_on_power_law_weights():
    rng = np.random.default_rng(7)
    weights = {cid: float(w) for cid, w in
               enumerate((rng.pareto(1.1, size=64) + 1) * 100)}
    parts = 8
    balanced = lpt(weights, parts)
    loads = balanced.partition_loads(weights)
    hash_loads = [0.0] * parts
    for cid, w in weights.items():
        hash_loads[hash(cid) % parts] += w
    mean = sum(weights.values()) / parts
    assert max(loads) / mean <= max(hash_loads) / mean
    # LPT guarantees max load <= mean + heaviest single item
    assert max(loads) <= mean + max(weights.values()) + 1e-9


# ----------------------------------------------------------------------
# vectorized vs scalar agreement
# ----------------------------------------------------------------------

interesting_keys = st.one_of(
    st.integers(-3, 70),
    st.just(-1),
    st.integers(_HASH_MODULUS - 2, _HASH_MODULUS + 2),
)


@settings(max_examples=60, deadline=None)
@given(keys=st.lists(interesting_keys, min_size=0, max_size=50),
       parts=st.integers(1, 6))
def test_partition_array_matches_scalar(keys, parts):
    weights = {cid: float(cid % 5 + 1) for cid in range(0, 64, 3)}
    partitioner = lpt(weights, parts)
    column = np.array(keys, dtype=np.int64)
    vectorized = partitioner.partition_array(column)
    scalar = [partitioner.partition(k) for k in keys]
    if vectorized is None:
        # only permissible when the hash fallback range is exceeded
        assert any(abs(k) >= _HASH_MODULUS for k in keys)
    else:
        assert vectorized.tolist() == scalar


def test_partition_array_overrides_only_known_keys():
    partitioner = NnzBalancedPartitioner(4, {10: 3, 20: 1})
    keys = np.array([9, 10, 11, 20, 21, -1], dtype=np.int64)
    got = partitioner.partition_array(keys).tolist()
    assert got[1] == 3 and got[3] == 1
    assert got[0] == hash(9) % 4
    assert got[2] == hash(11) % 4
    assert got[5] == hash(-1) % 4
    assert got == [partitioner.partition(int(k)) for k in keys]


def test_non_int_keys_fall_back_to_hash():
    partitioner = NnzBalancedPartitioner(3, {1: 2})
    assert partitioner.partition("chunk-1") == hash("chunk-1") % 3
    assert partitioner.partition((1, 2)) == hash((1, 2)) % 3


# ----------------------------------------------------------------------
# equality / hashing and the engine fast paths
# ----------------------------------------------------------------------

def test_eq_hash_by_content_not_identity():
    weights = {cid: float(cid + 1) for cid in range(12)}
    a, b = lpt(weights, 3), lpt(weights, 3)
    assert a is not b and a == b and hash(a) == hash(b)
    assert a != lpt(weights, 4)
    assert a != lpt({**weights, 12: 99.0}, 3)


def test_partition_by_same_partitioner_is_a_noop():
    ctx = ClusterContext(num_executors=2)
    weights = {cid: float(cid % 3 + 1) for cid in range(9)}
    data = [(cid, cid * 10) for cid in range(9)]
    placed = ctx.parallelize(data, 3).partition_by(lpt(weights, 3))
    again = placed.partition_by(lpt(weights, 3))
    assert again is placed  # equal partitioner → no shuffle at all
    moved = placed.partition_by(lpt({**weights, 0: 50.0}, 3))
    assert moved is not placed


def test_partition_by_places_per_assignment():
    ctx = ClusterContext(num_executors=2)
    partitioner = NnzBalancedPartitioner(3, {0: 2, 1: 2, 2: 0, 3: 1})
    data = [(cid, chr(65 + cid)) for cid in range(4)]
    placed = ctx.parallelize(data, 2).partition_by(partitioner)
    assert Counter(placed.collect()) == Counter(data)
    for pid, records in enumerate(placed.glom().collect()):
        for key, _value in records:
            assert partitioner.partition(key) == pid


# ----------------------------------------------------------------------
# pickling / process backend
# ----------------------------------------------------------------------

def test_pickle_round_trip_preserves_behaviour():
    weights = {cid: float((cid * 13) % 11 + 1) for cid in range(30)}
    original = lpt(weights, 5)
    clone = pickle.loads(pickle.dumps(original))
    assert clone == original and hash(clone) == hash(original)
    keys = np.arange(-1, 40, dtype=np.int64)
    np.testing.assert_array_equal(clone.partition_array(keys),
                                  original.partition_array(keys))


def test_survives_process_backend_shuffle():
    weights = {cid: float(cid % 4 + 1) for cid in range(16)}
    partitioner = lpt(weights, 2)
    data = [(cid, cid) for cid in range(16)]
    with ClusterContext(num_executors=2, backend="process") as ctx:
        placed = ctx.parallelize(data, 2).partition_by(partitioner)
        for pid, records in enumerate(placed.glom().collect()):
            for key, _value in records:
                assert partitioner.partition(key) == pid
