"""Unit tests for the core RDD API: transformations and actions."""

import pytest

from repro.engine import ClusterContext
from repro.errors import EngineError, TaskFailure


@pytest.fixture()
def ctx():
    return ClusterContext(num_executors=4, default_parallelism=4)


class TestCreation:
    def test_parallelize_roundtrip(self, ctx):
        data = list(range(37))
        assert ctx.parallelize(data, 5).collect() == data

    def test_parallelize_preserves_order_across_partitions(self, ctx):
        data = [9, 1, 8, 2, 7, 3]
        assert ctx.parallelize(data, 3).collect() == data

    def test_parallelize_clamps_partitions_to_data(self, ctx):
        rdd = ctx.parallelize([1, 2], 16)
        assert rdd.num_partitions == 2
        assert rdd.collect() == [1, 2]

    def test_parallelize_empty(self, ctx):
        rdd = ctx.parallelize([], 4)
        assert rdd.collect() == []
        assert rdd.count() == 0

    def test_generate_runs_per_partition(self, ctx):
        rdd = ctx.generate(3, lambda i: range(i * 10, i * 10 + 2))
        assert rdd.collect() == [0, 1, 10, 11, 20, 21]

    def test_empty_rdd(self, ctx):
        assert ctx.empty_rdd().is_empty()


class TestTransformations:
    def test_map(self, ctx):
        assert ctx.parallelize([1, 2, 3], 2).map(lambda x: x * x).collect() \
            == [1, 4, 9]

    def test_filter(self, ctx):
        rdd = ctx.parallelize(range(10), 3).filter(lambda x: x % 2 == 0)
        assert rdd.collect() == [0, 2, 4, 6, 8]

    def test_flat_map(self, ctx):
        rdd = ctx.parallelize([1, 2], 2).flat_map(lambda x: [x] * x)
        assert rdd.collect() == [1, 2, 2]

    def test_map_partitions_with_index(self, ctx):
        rdd = ctx.parallelize(range(8), 4).map_partitions_with_index(
            lambda i, part: [(i, sum(part))]
        )
        assert rdd.collect() == [(0, 1), (1, 5), (2, 9), (3, 13)]

    def test_glom_exposes_partitions(self, ctx):
        parts = ctx.parallelize(range(6), 3).glom().collect()
        assert parts == [[0, 1], [2, 3], [4, 5]]

    def test_union(self, ctx):
        a = ctx.parallelize([1, 2], 2)
        b = ctx.parallelize([3, 4], 2)
        u = a.union(b)
        assert u.num_partitions == 4
        assert u.collect() == [1, 2, 3, 4]

    def test_zip_partitions(self, ctx):
        a = ctx.parallelize([1, 2, 3, 4], 2)
        b = ctx.parallelize([10, 20, 30, 40], 2)
        z = a.zip_partitions(b, lambda xs, ys: [sum(xs) + sum(ys)])
        assert z.collect() == [33, 77]

    def test_zip_partitions_rejects_mismatched_counts(self, ctx):
        a = ctx.parallelize(range(4), 2)
        b = ctx.parallelize(range(4), 4)
        with pytest.raises(EngineError):
            a.zip_partitions(b, lambda xs, ys: [])

    def test_distinct(self, ctx):
        rdd = ctx.parallelize([3, 1, 3, 2, 1, 3], 3)
        assert sorted(rdd.distinct().collect()) == [1, 2, 3]

    def test_coalesce(self, ctx):
        rdd = ctx.parallelize(range(10), 5).coalesce(2)
        assert rdd.num_partitions == 2
        assert sorted(rdd.collect()) == list(range(10))

    def test_sample_is_deterministic(self, ctx):
        rdd = ctx.parallelize(range(1000), 4)
        first = rdd.sample(0.1, seed=7).collect()
        second = rdd.sample(0.1, seed=7).collect()
        assert first == second
        assert 50 < len(first) < 200

    def test_zip_with_index(self, ctx):
        rdd = ctx.parallelize("abcde", 3).zip_with_index()
        assert rdd.collect() == [
            ("a", 0), ("b", 1), ("c", 2), ("d", 3), ("e", 4)
        ]

    def test_key_by(self, ctx):
        rdd = ctx.parallelize([10, 25], 1).key_by(lambda x: x % 10)
        assert rdd.collect() == [(0, 10), (5, 25)]

    def test_laziness_no_work_before_action(self, ctx):
        calls = []

        def spy(x):
            calls.append(x)
            return x

        rdd = ctx.parallelize([1, 2, 3], 1).map(spy)
        assert calls == []
        rdd.collect()
        assert calls == [1, 2, 3]


class TestActions:
    def test_count(self, ctx):
        assert ctx.parallelize(range(101), 7).count() == 101

    def test_reduce(self, ctx):
        assert ctx.parallelize(range(1, 11), 3).reduce(
            lambda a, b: a + b
        ) == 55

    def test_reduce_empty_raises(self, ctx):
        with pytest.raises(EngineError):
            ctx.parallelize([], 2).reduce(lambda a, b: a + b)

    def test_reduce_skips_empty_partitions(self, ctx):
        rdd = ctx.parallelize([5], 1).union(ctx.parallelize([], 1))
        assert rdd.reduce(lambda a, b: a + b) == 5

    def test_fold(self, ctx):
        assert ctx.parallelize(range(5), 2).fold(0, lambda a, b: a + b) == 10

    def test_aggregate(self, ctx):
        total, count = ctx.parallelize(range(10), 3).aggregate(
            (0, 0),
            lambda acc, x: (acc[0] + x, acc[1] + 1),
            lambda a, b: (a[0] + b[0], a[1] + b[1]),
        )
        assert (total, count) == (45, 10)

    def test_sum_min_max(self, ctx):
        rdd = ctx.parallelize([4, -1, 7, 2], 2)
        assert rdd.sum() == 12
        assert rdd.min() == -1
        assert rdd.max() == 7

    def test_take_stops_early(self, ctx):
        computed = []

        def spy(i, part):
            computed.append(i)
            return part

        rdd = ctx.parallelize(range(100), 10) \
                 .map_partitions_with_index(spy)
        assert rdd.take(3) == [0, 1, 2]
        assert computed == [0]

    def test_first(self, ctx):
        assert ctx.parallelize([42, 1], 2).first() == 42

    def test_first_empty_raises(self, ctx):
        with pytest.raises(EngineError):
            ctx.parallelize([], 1).first()

    def test_foreach(self, ctx):
        seen = []
        ctx.parallelize([1, 2, 3], 2).foreach(seen.append)
        assert sorted(seen) == [1, 2, 3]

    def test_count_by_value(self, ctx):
        counts = ctx.parallelize(list("abca"), 2).count_by_value()
        assert counts == {"a": 2, "b": 1, "c": 1}

    def test_task_failure_carries_partition(self, ctx):
        def boom(x):
            raise ValueError("bad record")

        with pytest.raises(TaskFailure) as excinfo:
            ctx.parallelize([1], 1).map(boom).collect()
        assert excinfo.value.partition_index == 0
        assert isinstance(excinfo.value.cause, ValueError)


class TestThreadedExecution:
    def test_threaded_matches_serial(self):
        serial = ClusterContext(num_executors=4)
        threaded = ClusterContext(num_executors=4, use_threads=True)
        data = list(range(500))
        expected = serial.parallelize(data, 8).map(lambda x: x * 3).sum()
        actual = threaded.parallelize(data, 8).map(lambda x: x * 3).sum()
        assert actual == expected


class TestLineageStrings:
    def test_lineage_tree(self, ctx):
        rdd = ctx.parallelize([1], 1).map(lambda x: x).filter(bool)
        info = rdd.lineage()
        assert info["op"] == "filter"
        assert info["parents"][0]["op"] == "map"
        assert info["parents"][0]["parents"][0]["op"] == "parallelize"

    def test_lineage_string_contains_ids(self, ctx):
        rdd = ctx.parallelize([1], 1).map(lambda x: x)
        text = rdd.lineage_string()
        assert "map" in text and "parallelize" in text
