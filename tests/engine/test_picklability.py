"""Task-closure picklability: every public transformation must ship.

The process backend serializes a task's whole RDD lineage — wrapper
callables, user lambdas, captured closure cells — with
:mod:`repro.engine.closure` and rebuilds it in a worker. These tests
round-trip each public transformation's task through
``task_dumps``/``task_loads`` in-process (no fork needed) and assert
the rebuilt task produces byte-identical partition output.
"""

import pickle

import pytest

from repro.engine import ClusterContext, HashPartitioner, MetricsRegistry, Tracer
from repro.engine.closure import task_dumps, task_loads
from repro.engine.worker import (
    ComputePartitionTask,
    TaskBlockCache,
    WorkerContext,
    bind_lineage,
)

_OFFSET = 7  # captured by reference-pickled module-level UDFs


def _module_udf(x):
    return x * 3 + _OFFSET


# Each builder returns an RDD whose lineage exercises one public
# transformation; lambdas capture locals so closure cells ship too.

def _build_map(ctx):
    base = 5
    return ctx.parallelize(range(40), 4).map(lambda x: x * 2 + base)


def _build_map_module_udf(ctx):
    return ctx.parallelize(range(40), 4).map(_module_udf)


def _build_filter(ctx):
    keep = {0, 2}
    return ctx.parallelize(range(40), 4).filter(lambda x: x % 4 in keep)


def _build_flat_map(ctx):
    return ctx.parallelize(range(20), 4).flat_map(lambda x: [x, -x])


def _build_map_partitions(ctx):
    return ctx.parallelize(range(40), 4) \
              .map_partitions(lambda part: [sum(part)])


def _build_map_partitions_with_index(ctx):
    return ctx.parallelize(range(40), 4) \
              .map_partitions_with_index(
                  lambda index, part: [(index, x) for x in part])


def _build_glom(ctx):
    return ctx.parallelize(range(24), 4).glom()


def _build_key_by(ctx):
    return ctx.parallelize(range(30), 3).key_by(lambda x: x % 5)


def _build_zip_with_index(ctx):
    return ctx.parallelize("abcdefghij", 3).zip_with_index()


def _build_union(ctx):
    left = ctx.parallelize(range(10), 2)
    return left.union(ctx.parallelize(range(10, 20), 2))


def _build_zip_partitions(ctx):
    left = ctx.parallelize(range(20), 4)
    right = ctx.parallelize(range(100, 120), 4)
    return left.zip_partitions(right,
                               lambda a, b: [x + y for x, y in zip(a, b)])


def _build_sample(ctx):
    return ctx.parallelize(range(100), 4).sample(0.3, seed=11)


def _build_distinct(ctx):
    return ctx.parallelize([i % 7 for i in range(70)], 4).distinct()


def _build_coalesce(ctx):
    return ctx.parallelize(range(40), 8).coalesce(2)


def _build_keys_values(ctx):
    pairs = ctx.parallelize([(i % 3, i) for i in range(30)], 3)
    return pairs.keys().union(pairs.values())


def _build_map_values(ctx):
    scale = 10
    return ctx.parallelize([(i % 3, i) for i in range(30)], 3) \
              .map_values(lambda v: v * scale)


def _build_flat_map_values(ctx):
    return ctx.parallelize([(i % 3, i) for i in range(15)], 3) \
              .flat_map_values(lambda v: [v, v + 100])


def _build_reduce_by_key(ctx):
    return ctx.parallelize([(i % 5, i) for i in range(50)], 4) \
              .reduce_by_key(lambda a, b: a + b)


def _build_combine_by_key(ctx):
    return ctx.parallelize([(i % 4, i) for i in range(40)], 4) \
              .combine_by_key(lambda v: [v],
                              lambda acc, v: acc + [v],
                              lambda a, b: a + b)


def _build_group_by_key(ctx):
    return ctx.parallelize([(i % 4, i * i) for i in range(32)], 4) \
              .group_by_key()


def _build_count_by_key_shape(ctx):
    # count_by_key is an action; its map-side ``(key, 1)`` lineage is
    # what ships, so exercise that shape
    return ctx.parallelize([(i % 3, i) for i in range(30)], 3) \
              .map_values(lambda _v: 1).reduce_by_key(lambda a, b: a + b)


def _build_partition_by(ctx):
    return ctx.parallelize([(i % 8, i) for i in range(48)], 4) \
              .partition_by(HashPartitioner(3))


def _build_join(ctx):
    left = ctx.parallelize([(i % 4, i) for i in range(24)], 3)
    right = ctx.parallelize([(i % 4, chr(65 + i)) for i in range(8)], 2)
    return left.join(right)


def _build_left_outer_join(ctx):
    left = ctx.parallelize([(i % 5, i) for i in range(25)], 3)
    right = ctx.parallelize([(0, "z"), (1, "y")], 2)
    return left.left_outer_join(right)


def _build_full_outer_join(ctx):
    left = ctx.parallelize([(0, "a"), (2, "b")], 2)
    right = ctx.parallelize([(1, "x"), (2, "y")], 2)
    return left.full_outer_join(right)


def _build_cogroup(ctx):
    left = ctx.parallelize([(i % 3, i) for i in range(15)], 3)
    right = ctx.parallelize([(i % 3, -i) for i in range(9)], 3)
    return left.cogroup(right)


def _build_sort_by_key(ctx):
    return ctx.parallelize([((i * 17) % 31, i) for i in range(31)], 4) \
              .sort_by_key()


TRANSFORMS = {
    "map": _build_map,
    "map_module_udf": _build_map_module_udf,
    "filter": _build_filter,
    "flat_map": _build_flat_map,
    "map_partitions": _build_map_partitions,
    "map_partitions_with_index": _build_map_partitions_with_index,
    "glom": _build_glom,
    "key_by": _build_key_by,
    "zip_with_index": _build_zip_with_index,
    "union": _build_union,
    "zip_partitions": _build_zip_partitions,
    "sample": _build_sample,
    "distinct": _build_distinct,
    "coalesce": _build_coalesce,
    "keys_values": _build_keys_values,
    "map_values": _build_map_values,
    "flat_map_values": _build_flat_map_values,
    "reduce_by_key": _build_reduce_by_key,
    "combine_by_key": _build_combine_by_key,
    "group_by_key": _build_group_by_key,
    "count_by_key_shape": _build_count_by_key_shape,
    "partition_by": _build_partition_by,
    "join": _build_join,
    "left_outer_join": _build_left_outer_join,
    "full_outer_join": _build_full_outer_join,
    "cogroup": _build_cogroup,
    "sort_by_key": _build_sort_by_key,
}


def _worker_context():
    metrics = MetricsRegistry()
    return WorkerContext(metrics, Tracer(enabled=False),
                         TaskBlockCache(metrics, {}))


class TestTaskRoundTrip:
    @pytest.mark.parametrize("name", sorted(TRANSFORMS))
    def test_round_trip_output_identical(self, name):
        with ClusterContext(num_executors=2) as ctx:
            rdd = TRANSFORMS[name](ctx)
            # materialize pending shuffle stages the way a job would;
            # the reduce side then ships with its map output inline
            for node, which in ctx.scheduler.shuffle_stages(rdd):
                if which is None:
                    node.materialize(pool=None)
                else:
                    node.materialize_parent(which, pool=None)
            for index in range(rdd.num_partitions):
                expected = list(rdd.compute(index))
                clone = task_loads(task_dumps(
                    ComputePartitionTask(rdd, index)))
                bind_lineage(clone.roots(), _worker_context())
                got = clone.run()
                assert pickle.dumps(got) == pickle.dumps(expected), \
                    f"partition {index} diverged after pickling"

    def test_unpickled_lineage_drops_driver_context(self):
        with ClusterContext(num_executors=2) as ctx:
            rdd = ctx.parallelize(range(8), 2).map(lambda x: x + 1)
            clone = task_loads(task_dumps(ComputePartitionTask(rdd, 0)))
            assert clone.rdd.context is None
            assert clone.rdd.dependencies[0].context is None


class TestClosureSerialization:
    def test_module_function_ships_by_reference(self):
        clone = task_loads(task_dumps(_module_udf))
        assert clone is _module_udf

    def test_lambda_ships_by_value_with_cells(self):
        captured = 42
        clone = task_loads(task_dumps(lambda x: x + captured))
        assert clone(1) == 43

    def test_lambda_globals_ship_by_value(self):
        clone = task_loads(task_dumps(lambda x: _module_udf(x) - _OFFSET))
        assert clone(5) == 15
