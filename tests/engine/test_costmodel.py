"""Unit tests for ClusterCostModel's plan-pricing helpers.

scan_seconds/shuffle_seconds price candidate logical plans for the
rewrite optimizer (repro.core.optimizer) before any task runs, so they
must be well-behaved on estimates: monotone in bytes, zero at zero,
and density-scaled the way sparse chunks actually are.
"""

import pytest

from repro.engine.costmodel import ClusterCostModel


@pytest.fixture
def model():
    return ClusterCostModel()


class TestScanSeconds:
    def test_zero_and_negative_bytes_cost_nothing(self, model):
        assert model.scan_seconds(0) == 0.0
        assert model.scan_seconds(-100) == 0.0

    def test_monotone_in_bytes(self, model):
        costs = [model.scan_seconds(n) for n in (1, 10, 1000, 10**9)]
        assert costs == sorted(costs)
        assert costs[0] > 0.0

    def test_density_scales_linearly(self, model):
        full = model.scan_seconds(10**6, density=1.0)
        half = model.scan_seconds(10**6, density=0.5)
        hundredth = model.scan_seconds(10**6, density=0.01)
        assert half == pytest.approx(full / 2)
        assert hundredth == pytest.approx(full / 100)

    def test_density_is_clamped(self, model):
        assert model.scan_seconds(10**6, density=2.0) == \
            model.scan_seconds(10**6, density=1.0)
        assert model.scan_seconds(10**6, density=-0.5) == 0.0

    def test_uses_recompute_bandwidth(self):
        fast = ClusterCostModel(recompute_bandwidth_bytes_s=2e9)
        slow = ClusterCostModel(recompute_bandwidth_bytes_s=1e9)
        assert fast.scan_seconds(10**6) == \
            pytest.approx(slow.scan_seconds(10**6) / 2)


class TestShuffleSeconds:
    def test_zero_bytes_zero_tasks_cost_nothing(self, model):
        assert model.shuffle_seconds(0, num_tasks=0) == 0.0

    def test_monotone_in_bytes(self, model):
        costs = [model.shuffle_seconds(n) for n in (1, 10**3, 10**6, 10**9)]
        assert costs == sorted(costs)

    def test_tasks_add_launch_overhead(self, model):
        base = model.shuffle_seconds(10**6, num_tasks=0)
        with_tasks = model.shuffle_seconds(10**6, num_tasks=8)
        assert with_tasks == pytest.approx(
            base + 8 * model.task_overhead_s)

    def test_negative_inputs_are_clamped(self, model):
        assert model.shuffle_seconds(-5, num_tasks=-3) == 0.0

    def test_network_slower_than_scan(self, model):
        # the whole point of pushdown: moving a byte costs more than
        # scanning it, so plans that shuffle less always price lower
        n = 10**7
        assert model.shuffle_seconds(n) > model.scan_seconds(n)


class TestJobSeconds:
    """serial_job_seconds / pipelined_job_seconds price the barrier
    loop vs the pipelined scheduler's critical path."""

    def test_empty_plan_costs_nothing(self, model):
        assert model.serial_job_seconds({}) == 0.0
        assert model.pipelined_job_seconds({}, {}) == 0.0

    def test_chain_has_no_overlap(self, model):
        seconds = {"a": 1.0, "b": 2.0, "c": 3.0}
        deps = {"b": ["a"], "c": ["b"]}
        assert model.serial_job_seconds(seconds) == 6.0
        assert model.pipelined_job_seconds(seconds, deps) == 6.0

    def test_diamond_overlaps_independent_sides(self, model):
        # a and b are independent inputs of c: pipelined pays
        # max(a, b) + c, the barrier loop pays a + b + c
        seconds = {"a": 1.0, "b": 2.0, "c": 3.0}
        deps = {"c": ["a", "b"]}
        assert model.serial_job_seconds(seconds) == 6.0
        assert model.pipelined_job_seconds(seconds, deps) == 5.0

    def test_fully_independent_stages_take_the_max(self, model):
        seconds = {"a": 1.0, "b": 4.0, "c": 2.0}
        assert model.pipelined_job_seconds(seconds, {}) == 4.0

    def test_missing_dep_keys_contribute_nothing(self, model):
        seconds = {"a": 2.0}
        deps = {"a": ["ghost"]}
        assert model.pipelined_job_seconds(seconds, deps) == 2.0

    def test_cycle_does_not_hang(self, model):
        seconds = {"a": 1.0, "b": 1.0}
        deps = {"a": ["b"], "b": ["a"]}
        # degenerate input; the guard just has to terminate with a
        # finite answer
        assert model.pipelined_job_seconds(seconds, deps) >= 1.0
