"""Caching, eviction, lineage recomputation, and fault injection."""

import pytest

from repro.engine import ClusterContext, StorageLevel
from repro.engine.lineage import (
    FaultInjector,
    collect_rdds,
    count_shuffle_boundaries,
    lineage_depth,
)


@pytest.fixture()
def ctx():
    return ClusterContext(num_executors=4, default_parallelism=4)


class TestCaching:
    def test_cache_avoids_recompute(self, ctx):
        calls = []
        rdd = ctx.parallelize(range(8), 4).map(
            lambda x: calls.append(x) or x
        ).cache()
        rdd.collect()
        rdd.collect()
        assert len(calls) == 8

    def test_uncached_recomputes(self, ctx):
        calls = []
        rdd = ctx.parallelize(range(4), 2).map(
            lambda x: calls.append(x) or x
        )
        rdd.collect()
        rdd.collect()
        assert len(calls) == 8

    def test_unpersist_frees_blocks(self, ctx):
        rdd = ctx.parallelize(range(8), 4).cache()
        rdd.collect()
        assert ctx.cache.block_count() == 4
        rdd.unpersist()
        assert ctx.cache.block_count() == 0

    def test_cache_hit_metrics(self, ctx):
        rdd = ctx.parallelize(range(8), 4).cache()
        rdd.collect()
        before = ctx.metrics.snapshot()
        rdd.collect()
        delta = ctx.metrics.snapshot() - before
        assert delta.cache_hits == 4
        assert delta.cache_misses == 0


class TestEviction:
    def test_budget_evicts_lru(self):
        ctx = ClusterContext(num_executors=2, cache_budget_bytes=2000)
        first = ctx.parallelize([bytes(500)] * 2, 2).cache()
        second = ctx.parallelize([bytes(500)] * 4, 2).cache()
        first.collect()
        second.collect()
        assert ctx.metrics.cache_evictions > 0

    def test_memory_and_disk_spills(self):
        ctx = ClusterContext(num_executors=2, cache_budget_bytes=1500)
        rdd = ctx.parallelize([bytes(600)] * 4, 4) \
                 .persist(StorageLevel.MEMORY_AND_DISK)
        rdd.collect()
        assert ctx.metrics.disk_write_bytes > 0
        # spilled blocks still serve reads (counted as disk reads)
        assert rdd.count() == 4
        assert ctx.metrics.disk_read_bytes > 0

    def test_memory_only_eviction_drops_data_but_recomputes(self):
        ctx = ClusterContext(num_executors=2, cache_budget_bytes=1200)
        rdd = ctx.parallelize([bytes(600)] * 4, 4) \
                 .persist(StorageLevel.MEMORY)
        assert rdd.count() == 4
        assert rdd.count() == 4
        assert ctx.metrics.disk_write_bytes == 0


class TestFaultTolerance:
    def test_lost_partition_recomputed(self, ctx):
        rdd = ctx.parallelize(range(16), 4).map(lambda x: x * 2).cache()
        expected = rdd.collect()
        assert ctx.fail_partition(rdd, 2)
        assert rdd.collect() == expected
        assert ctx.metrics.recomputations == 1

    def test_fail_unknown_partition_returns_false(self, ctx):
        rdd = ctx.parallelize(range(4), 2).cache()
        assert not ctx.fail_partition(rdd, 0)  # never computed yet

    def test_fault_injector_strike_preserves_results(self, ctx):
        base = ctx.parallelize([(i % 5, i) for i in range(50)], 4)
        summed = base.reduce_by_key(lambda a, b: a + b).cache()
        expected = sorted(summed.collect())
        injector = FaultInjector(ctx, seed=1)
        lost = injector.strike(summed, kill_fraction=1.0)
        assert lost > 0
        assert sorted(summed.collect()) == expected

    def test_repeated_strikes(self, ctx):
        rdd = ctx.parallelize(range(100), 5).map(lambda x: x + 1).cache()
        expected = rdd.sum()
        injector = FaultInjector(ctx, seed=3)
        for _round in range(3):
            injector.strike(rdd, kill_fraction=0.7)
            assert rdd.sum() == expected


class TestLineageAnalysis:
    def test_lineage_depth(self, ctx):
        rdd = ctx.parallelize([1], 1)
        assert lineage_depth(rdd) == 1
        assert lineage_depth(rdd.map(lambda x: x).filter(bool)) == 3

    def test_count_shuffle_boundaries(self, ctx):
        pairs = ctx.parallelize([(1, 1)], 1)
        assert count_shuffle_boundaries(pairs) == 0
        reduced = pairs.reduce_by_key(lambda a, b: a + b)
        assert count_shuffle_boundaries(reduced) == 1

    def test_collect_rdds_topological(self, ctx):
        a = ctx.parallelize([1], 1)
        b = a.map(lambda x: x)
        c = b.filter(bool)
        nodes = collect_rdds(c)
        assert [n.rdd_id for n in nodes] == [a.rdd_id, b.rdd_id, c.rdd_id]
