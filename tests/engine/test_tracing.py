"""Tests for the span tracer, job profiles, and trace exporters."""

import json

import numpy as np
import pytest

from repro import ArrayRDD
from repro.engine import ClusterContext
from repro.engine.tracing import (
    NULL_SPAN,
    Span,
    Tracer,
    load_jsonl,
    logical_tree,
    profiles_from_spans,
)


def traced_ctx(**kwargs):
    kwargs.setdefault("num_executors", 4)
    kwargs.setdefault("default_parallelism", 4)
    kwargs.setdefault("trace", True)
    return ClusterContext(**kwargs)


def shuffle_job(ctx):
    return (ctx.parallelize(range(200), 4)
               .map(lambda x: (x % 7, x))
               .reduce_by_key(lambda a, b: a + b)
               .collect())


def fused_array_job(ctx):
    rng = np.random.default_rng(7)
    data = rng.random((64, 64))
    valid = rng.random((64, 64)) < 0.4
    arr = ArrayRDD.from_numpy(ctx, data, (16, 16), valid=valid)
    fused = ((arr * 2.0 + 1.0)
             .map_values(lambda a: a - 0.5)
             .filter(lambda a: a > 0.0))
    return fused.sum()


class TestDisabledTracer:
    def test_default_context_records_nothing(self):
        ctx = ClusterContext(num_executors=2)
        assert not ctx.tracer.enabled
        shuffle_job(ctx)
        assert ctx.tracer.spans() == []
        assert ctx.tracer.job_profiles() == []

    def test_disabled_span_is_the_shared_null_span(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("x", "job") is NULL_SPAN
        assert tracer.start("x", "job") is NULL_SPAN
        tracer.event("x", "cache")
        with tracer.span("x", "stage") as span:
            span.set(bytes=1)    # must be a silent no-op
        assert tracer.spans() == []


class TestSpanTree:
    def test_job_stage_task_hierarchy(self):
        ctx = traced_ctx()
        shuffle_job(ctx)
        spans = ctx.tracer.spans()
        by_id = {span.span_id: span for span in spans}

        jobs = [s for s in spans if s.kind == "job"]
        assert len(jobs) == 1
        assert jobs[0].parent_id is None

        shuffles = [s for s in spans if s.kind == "shuffle"]
        assert len(shuffles) == 1
        assert shuffles[0].parent_id == jobs[0].span_id
        # map-side combining: 4 map partitions x 7 keys
        assert shuffles[0].attrs["records"] == 28
        assert shuffles[0].attrs["bytes"] > 0

        stages = [s for s in spans if s.kind == "stage"]
        assert len(stages) == 1
        assert stages[0].parent_id == jobs[0].span_id

        tasks = [s for s in spans if s.kind == "task"]
        assert len(tasks) == 8    # 4 map tasks + 4 result tasks
        for task in tasks:
            parent = by_id[task.parent_id]
            assert parent.kind in ("shuffle", "stage")
            assert "partition" in task.attrs

    def test_timings_are_sane(self):
        ctx = traced_ctx()
        shuffle_job(ctx)
        for span in ctx.tracer.spans():
            assert span.end_s >= span.start_s

    def test_plan_span_carries_kernels_and_chunk_modes(self):
        ctx = traced_ctx()
        fused_array_job(ctx)
        plans = [s for s in ctx.tracer.spans() if s.kind == "plan"]
        assert plans, "fused chain should record plan spans"
        for span in plans:
            # the optimizer folds the adjacent scalar ops into one kernel
            assert span.attrs["kernels"] == [
                "fold[mul+add]", "map", "filter"]
            assert span.attrs["chunks_in"] > 0
            assert span.attrs["chunks_out"] > 0
        mode_chunks = sum(
            span.attrs.get(f"chunks_{mode}", 0)
            for span in plans
            for mode in ("dense", "sparse", "super_sparse"))
        assert mode_chunks == sum(s.attrs["chunks_out"] for s in plans)

    def test_cache_and_broadcast_and_checkpoint_spans(self):
        ctx = traced_ctx()
        ctx.broadcast([1, 2, 3])
        cached = ctx.parallelize(range(40), 4).map(lambda x: x).persist()
        cached.count()
        cached.count()
        ck = ctx.parallelize(range(8), 2).checkpoint()
        ck.collect()
        kinds = {span.kind for span in ctx.tracer.spans()}
        assert {"broadcast", "cache", "checkpoint"} <= kinds
        hits = [s for s in ctx.tracer.spans()
                if s.kind == "cache" and s.name == "cache_hit"]
        assert len(hits) == 4    # second count served from cache

    def test_abandoned_children_cannot_poison_the_stack(self):
        tracer = Tracer(enabled=True)
        outer = tracer.start("outer", "job")
        tracer.start("inner", "stage")    # never finished (error path)
        tracer.finish(outer)
        assert tracer.current_span() is None
        after = tracer.start("next", "job")
        assert after.parent_id is None


class TestLogicalDeterminism:
    def _run(self, use_threads):
        ctx = traced_ctx(use_threads=use_threads)
        total = fused_array_job(ctx)
        rows = shuffle_job(ctx)
        return logical_tree(ctx.tracer.spans()), total, sorted(rows)

    def test_serial_and_threaded_trees_match(self):
        tree_serial, total_serial, rows_serial = self._run(False)
        tree_threaded, total_threaded, rows_threaded = self._run(True)
        assert rows_serial == rows_threaded
        assert total_serial == pytest.approx(total_threaded)
        assert tree_serial == tree_threaded

    def test_different_workloads_differ(self):
        ctx_a = traced_ctx()
        shuffle_job(ctx_a)
        ctx_b = traced_ctx()
        fused_array_job(ctx_b)
        assert logical_tree(ctx_a.tracer.spans()) \
            != logical_tree(ctx_b.tracer.spans())


class TestJobProfile:
    def test_profile_aggregates_the_job(self):
        ctx = traced_ctx()
        shuffle_job(ctx)
        profile = ctx.tracer.last_job_profile()
        assert profile.name == "reduce_by_key"
        assert [stage.kind for stage in profile.stages] \
            == ["shuffle", "stage"]
        assert all(stage.num_tasks == 4 for stage in profile.stages)
        assert profile.critical_path_s > 0
        assert len(profile.critical_path) == 2
        assert 0.0 < profile.utilization <= 1.0
        assert profile.stages[0].records == 28    # map-side combined

    def test_render_is_a_stage_breakdown_report(self):
        ctx = traced_ctx()
        fused_array_job(ctx)
        report = ctx.tracer.last_job_profile().render()
        assert "Stage breakdown" in report
        assert "critical path" in report
        assert "chunk modes" in report

    def test_as_dict_round_trips_through_json(self):
        ctx = traced_ctx()
        shuffle_job(ctx)
        payload = json.dumps(ctx.tracer.last_job_profile().as_dict())
        assert json.loads(payload)["job"] == "reduce_by_key"


class TestExporters:
    def test_jsonl_round_trip_reproduces_the_profile(self, tmp_path):
        ctx = traced_ctx()
        shuffle_job(ctx)
        live = ctx.tracer.job_profiles()

        path = tmp_path / "run.trace.jsonl"
        ctx.tracer.export_jsonl(str(path))
        meta, spans = load_jsonl(str(path))
        assert meta["format"] == "repro-trace"
        assert meta["num_executors"] == 4
        assert len(spans) == len(ctx.tracer.spans())

        replayed = profiles_from_spans(
            spans, num_executors=meta["num_executors"])
        assert len(replayed) == len(live)
        assert replayed[0].as_dict() == live[0].as_dict()

    def test_chrome_trace_is_valid_trace_event_json(self, tmp_path):
        ctx = traced_ctx()
        shuffle_job(ctx)
        path = tmp_path / "run.chrome.json"
        ctx.tracer.export_chrome_trace(str(path))
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        completes = [e for e in events if e["ph"] == "X"]
        metas = [e for e in events if e["ph"] == "M"]
        assert len(completes) == len(ctx.tracer.spans())
        assert metas, "expected thread_name metadata events"
        for event in completes:
            assert event["ts"] >= 0 and event["dur"] >= 0

    def test_span_dict_round_trip(self):
        span = Span(7, 3, "s", "stage", 1.5, "main", {"bytes": 9})
        span.end_s = 2.0
        clone = Span.from_dict(json.loads(json.dumps(span.as_dict())))
        assert clone.as_dict() == span.as_dict()


class TestCliTrace:
    def test_trace_command_replays_a_saved_log(self, tmp_path, capsys):
        from repro.cli import main

        ctx = traced_ctx()
        shuffle_job(ctx)
        log = tmp_path / "run.trace.jsonl"
        chrome = tmp_path / "run.chrome.json"
        ctx.tracer.export_jsonl(str(log))

        assert main(["trace", str(log), "--chrome", str(chrome)]) == 0
        out = capsys.readouterr().out
        assert "Stage breakdown" in out
        assert "critical path" in out
        assert "1 jobs" in out
        assert chrome.exists()

    def test_profile_alias_and_missing_file(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["profile", str(tmp_path / "nope.jsonl")]) == 2
