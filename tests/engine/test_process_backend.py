"""The process execution backend: workers, shm exchange, fault paths.

Covers what the scheduler contract tests (which run whole scenarios
under ``backend="process"``) do not: a worker killed mid-stage, the
shared-memory block-exchange counters, cached-chunk handoff, span
adoption, and resource cleanup — no leaked ``/dev/shm`` segments or
spill files after a run, even one that killed a worker.
"""

import os
import pickle
import signal

import pytest

from repro.engine import ClusterContext
from repro.engine.explain import memory_report
from repro.engine.shm import SHM_BLOCK_MIN_BYTES, leaked_segments


class _KillOnFirstAttempt:
    """A UDF that SIGKILLs its worker process once, then behaves.

    The sentinel file makes the crash one-shot: the first task to run
    the closure creates it and dies; retries (and every other task) see
    the file and pass records through unchanged.
    """

    def __init__(self, sentinel_path):
        self.sentinel_path = sentinel_path

    def __call__(self, record):
        if not os.path.exists(self.sentinel_path):
            with open(self.sentinel_path, "w") as fh:
                fh.write("crashed")
            os.kill(os.getpid(), signal.SIGKILL)
        return record


class TestWorkerDeath:
    def test_killed_worker_respawns_and_job_completes(self, tmp_path):
        sentinel = str(tmp_path / "crash-once")
        ctx = ClusterContext(num_executors=2, backend="process",
                             task_retries=3)
        prefix = ctx.shm_registry.prefix
        spill_dir = ctx.cache.spill_directory()
        pairs = ctx.parallelize([(i % 5, i) for i in range(60)], 4)
        killer = _KillOnFirstAttempt(sentinel)
        got = sorted(pairs.map(killer)
                     .reduce_by_key(lambda a, b: a + b).collect())

        with ClusterContext(num_executors=2) as serial:
            expected = sorted(
                serial.parallelize([(i % 5, i) for i in range(60)], 4)
                .reduce_by_key(lambda a, b: a + b).collect())
        assert got == expected
        assert os.path.exists(sentinel)

        snap = ctx.metrics.snapshot()
        assert snap.worker_respawns >= 1
        assert snap.task_retries >= 1

        ctx.shutdown()
        # the registry sweep reclaims even segments the dead worker
        # created but never handed back
        assert leaked_segments(prefix) == []
        assert os.listdir(spill_dir) == []

    def test_missed_heartbeat_event_precedes_respawn(self, tmp_path):
        """A SIGKILLed worker must yield a missed-heartbeat health
        event strictly before its respawn: the event is emitted in the
        crash handler ahead of ``record_worker_respawn()``, and the
        respawn event follows it in the monitor's log."""
        sentinel = str(tmp_path / "crash-once")
        ctx = ClusterContext(num_executors=2, backend="process",
                             task_retries=3)
        pids_before = set(ctx.worker_heartbeats.rows())
        assert len(pids_before) == 2  # registered at fork time
        killer = _KillOnFirstAttempt(sentinel)
        got = sorted(ctx.parallelize(range(40), 4).map(killer).collect())
        assert got == list(range(40))

        rules = [event.rule for event in ctx.health_monitor.events()]
        assert "worker_heartbeat_missed" in rules
        assert "worker_respawn" in rules
        assert rules.index("worker_heartbeat_missed") \
            < rules.index("worker_respawn")
        missed = [event for event in ctx.health_monitor.events()
                  if event.rule == "worker_heartbeat_missed"]
        # every blamed corpse is identified by pid and was a registered
        # worker (the broken pool's teardown may take the sibling too)
        assert missed and all(event.attrs.get("pid") in pids_before
                              for event in missed)
        assert ctx.metrics.snapshot().worker_respawns >= 1
        # the whole old generation was forgotten (the survivors died
        # with the torn-down executor — they must not read as crashes),
        # so the ledger holds only live replacements and health recovers
        rows = ctx.worker_heartbeats.rows()
        assert not pids_before & set(rows)
        assert rows and all(row["alive"] for row in rows.values())
        # health() re-evaluates the rules (telemetry is off here), so
        # the crash condition clears once the pool has recovered
        assert ctx.health().status == "ok"
        ctx.shutdown()

    def test_task_replies_beat_the_heartbeat_ledger(self):
        with ClusterContext(num_executors=2, backend="process") as ctx:
            ctx.parallelize(range(100), 4).map(lambda x: x + 1).collect()
            rows = ctx.worker_heartbeats.rows()
            assert sum(row["tasks"] for row in rows.values()) >= 4
            beaten = [row for row in rows.values() if row["tasks"]]
            assert beaten and all(row["last_task_s"] is not None
                                  for row in beaten)

    def test_crash_with_no_retries_surfaces(self, tmp_path):
        from repro.errors import TaskFailure

        sentinel = str(tmp_path / "crash-once")
        ctx = ClusterContext(num_executors=2, backend="process",
                             task_retries=0)
        prefix = ctx.shm_registry.prefix
        killer = _KillOnFirstAttempt(sentinel)
        with pytest.raises(TaskFailure):
            ctx.parallelize(range(40), 4).map(killer).collect()
        ctx.shutdown()
        assert leaked_segments(prefix) == []


class TestSharedMemoryExchange:
    def test_shuffle_blocks_travel_via_shm(self):
        ctx = ClusterContext(num_executors=2, backend="process")
        prefix = ctx.shm_registry.prefix
        pairs = ctx.parallelize([(i % 8, float(i)) for i in range(4000)],
                                4)
        got = sorted(pairs.reduce_by_key(lambda a, b: a + b).collect())
        snap = ctx.metrics.snapshot()
        assert snap.shm_segments_created >= 1
        assert snap.shm_bytes_mapped > 0
        expected = sorted(
            (k, sum(float(i) for i in range(4000) if i % 8 == k))
            for k in range(8))
        assert got == expected
        ctx.shutdown()
        assert leaked_segments(prefix) == []

    def test_cached_blocks_cross_as_shm_views(self):
        ctx = ClusterContext(num_executors=2, backend="process")
        # each partition is ~2000 floats -> far above the shm floor
        big = ctx.parallelize([float(i) for i in range(8000)], 4) \
                 .map(lambda x: x * 2).cache()
        first = big.collect()
        created_before = ctx.metrics.snapshot().shm_segments_created
        # second job reads the cache; partitions above the floor are
        # exported once and mapped zero-copy by the workers
        second = big.map(lambda x: x + 1).collect()
        snap = ctx.metrics.snapshot()
        assert snap.shm_segments_created > created_before
        assert ctx.shm_registry.segment_count() >= 1
        assert ctx.shm_registry.resident_bytes() \
            >= SHM_BLOCK_MIN_BYTES
        assert second == [x + 1 for x in first]
        prefix = ctx.shm_registry.prefix
        ctx.shutdown()
        assert leaked_segments(prefix) == []
        assert ctx.shm_registry.segment_count() == 0

    def test_memory_report_shows_backend_counters(self):
        with ClusterContext(num_executors=2, backend="process") as ctx:
            ctx.parallelize([(i % 4, i) for i in range(2000)], 4) \
               .reduce_by_key(lambda a, b: a + b).collect()
            report = memory_report(ctx)
            assert "backend: process" in report
            assert "shm_segments_created" in report
            assert "shm_bytes_mapped" in report
            assert "worker_respawns" in report

    def test_thread_backend_creates_no_segments(self):
        with ClusterContext(num_executors=2, use_threads=True) as ctx:
            ctx.parallelize([(i % 4, i) for i in range(2000)], 4) \
               .reduce_by_key(lambda a, b: a + b).collect()
            snap = ctx.metrics.snapshot()
            assert snap.shm_segments_created == 0
            assert snap.shm_bytes_mapped == 0


class TestSpillInterplay:
    def test_spilled_blocks_reach_workers_and_clean_up(self):
        from repro.engine import StorageLevel

        ctx = ClusterContext(num_executors=2, backend="process",
                             cache_budget_bytes=16384)
        spill_dir = ctx.cache.spill_directory()
        prefix = ctx.shm_registry.prefix
        big = ctx.parallelize([float(i) for i in range(6000)], 4) \
                 .persist(StorageLevel.MEMORY_AND_DISK)
        first = big.collect()
        assert ctx.cache.spilled_count() >= 1
        # workers read the spilled blocks through shipped file handles
        second = big.map(lambda x: x - 1).collect()
        assert second == [x - 1 for x in first]
        assert len(os.listdir(spill_dir)) == ctx.cache.spilled_count()
        ctx.shutdown()
        assert leaked_segments(prefix) == []


class TestTraceAdoption:
    def test_worker_spans_flow_back_to_driver(self):
        from repro.engine.tracing import logical_tree

        def job(ctx):
            return ctx.parallelize([(i % 3, i) for i in range(30)], 3) \
                      .reduce_by_key(lambda a, b: a + b).collect()

        with ClusterContext(num_executors=2, trace=True) as serial_ctx:
            serial_result = job(serial_ctx)
            serial_tree = logical_tree(serial_ctx.tracer.spans())
        with ClusterContext(num_executors=2, trace=True,
                            backend="process") as process_ctx:
            process_result = job(process_ctx)
            process_tree = logical_tree(process_ctx.tracer.spans())
        assert pickle.dumps(serial_result) == pickle.dumps(process_result)
        # same logical span tree: worker-side spans (shuffle writes,
        # plan passes) re-parent under the driver's task spans
        assert serial_tree == process_tree


class TestBackendValidation:
    def test_unknown_backend_rejected(self):
        from repro.errors import EngineError

        with pytest.raises(EngineError, match="backend"):
            ClusterContext(num_executors=2, backend="ray")

    def test_process_backend_reports_parallel(self):
        with ClusterContext(num_executors=2, backend="process") as ctx:
            assert ctx.parallel
        with ClusterContext(num_executors=2) as ctx:
            assert not ctx.parallel
