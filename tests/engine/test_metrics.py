"""Tests for the metrics registry/snapshot pair and its histogram."""

import dataclasses

from repro.engine.metrics import (
    COUNTER_FIELDS,
    MetricsRegistry,
    MetricsSnapshot,
    task_time_histogram,
)


class TestCounterFieldDriftGuard:
    """Snapshot and registry must expose the same logical counters.

    ``reset()`` and ``snapshot()`` are derived from
    ``fields(MetricsSnapshot)``; this guard catches a counter added to
    one dataclass but not the other.
    """

    def test_registry_has_every_snapshot_counter(self):
        registry_fields = {f.name for f in
                           dataclasses.fields(MetricsRegistry)}
        missing = set(COUNTER_FIELDS) - registry_fields
        assert not missing, (
            f"counters on MetricsSnapshot missing from "
            f"MetricsRegistry: {sorted(missing)}")

    def test_every_registry_counter_is_snapshotted(self):
        # non-counter registry fields are private or wall-clock
        # observations, never plain ints defaulting to 0
        counters = {
            f.name for f in dataclasses.fields(MetricsRegistry)
            if f.type == "int"
        }
        assert counters == set(COUNTER_FIELDS)

    def test_snapshot_and_reset_cover_all_counters(self):
        registry = MetricsRegistry()
        for name in COUNTER_FIELDS:
            setattr(registry, name, 7)
        snap = registry.snapshot()
        assert all(getattr(snap, name) == 7 for name in COUNTER_FIELDS)
        registry.reset()
        assert registry.snapshot() == MetricsSnapshot()

    def test_snapshot_subtraction_diffs_every_counter(self):
        lo = MetricsSnapshot()
        hi = MetricsSnapshot(**{name: 3 for name in COUNTER_FIELDS})
        delta = hi - lo
        assert all(
            getattr(delta, name) == 3 for name in COUNTER_FIELDS)


class TestTaskTimeHistogram:
    def test_empty(self):
        assert task_time_histogram([]) == []

    def test_constant_durations_collapse_to_one_bucket(self):
        assert task_time_histogram([0.5, 0.5, 0.5]) == [(0.5, 0.5, 3)]

    def test_buckets_cover_the_range_and_count_everything(self):
        times = [0.1 * i for i in range(1, 11)]
        buckets = task_time_histogram(times, bins=5)
        assert len(buckets) == 5
        assert buckets[0][0] == min(times)
        assert abs(buckets[-1][1] - max(times)) < 1e-9
        assert sum(count for _lo, _hi, count in buckets) == len(times)

    def test_registry_method_delegates_to_the_module_function(self):
        registry = MetricsRegistry()
        for value in (0.1, 0.2, 0.4):
            registry.record_task_time(value)
        assert registry.task_time_histogram(bins=3) \
            == task_time_histogram([0.1, 0.2, 0.4], bins=3)
        # an explicit list bypasses the recorded durations
        assert registry.task_time_histogram(bins=2, task_times=[1.0]) \
            == [(1.0, 1.0, 1)]
