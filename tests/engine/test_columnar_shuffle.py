"""The columnar shuffle data plane (``repro.engine.batches``).

The contract under test everywhere: the packed path must be
**byte-identical** to the generic per-record path — same record order,
same Python value types, same float bits — and must *refuse* (fall back)
whenever it cannot guarantee that.
"""

import pickle
import random

import numpy as np
import pytest

from repro.engine import ClusterContext, disable_columnar, enable_columnar
from repro.engine.batches import (
    HASH_MODULUS,
    VALUE_PACK_BYTE_LIMIT,
    ArrayValues,
    BatchSegment,
    RecordBatch,
    ScalarValues,
    columnar_enabled,
    combine_runs,
    group_indices_by_partition,
    pack_int_keys,
    pack_records,
    pack_values,
)
from repro.engine.partitioner import (
    ExplicitPartitioner,
    HashPartitioner,
    RangePartitioner,
)
from repro.errors import EngineError


class TestToggle:
    def test_default_on_and_context_restores(self):
        assert columnar_enabled()
        with disable_columnar():
            assert not columnar_enabled()
            with enable_columnar():
                assert columnar_enabled()
            assert not columnar_enabled()
        assert columnar_enabled()


class TestPartitionArray:
    """partition_array must agree element-wise with partition()."""

    def _check(self, partitioner, keys):
        expected = [partitioner.partition(k) for k in keys]
        got = partitioner.partition_array(
            np.array(keys, dtype=np.int64))
        assert got is not None
        assert got.tolist() == expected

    def test_hash_matches_including_negatives(self):
        self._check(HashPartitioner(7),
                    [0, 1, -1, -2, 5, -5, 1000003, -999999])

    def test_hash_minus_one_quirk(self):
        # CPython: hash(-1) == -2
        part = HashPartitioner(5)
        self._check(part, [-1])
        assert part.partition(-1) == (-2) % 5

    def test_hash_refuses_keys_at_modulus(self):
        part = HashPartitioner(4)
        for bad in (HASH_MODULUS, -HASH_MODULUS, HASH_MODULUS + 5):
            keys = np.array([0, bad], dtype=np.int64)
            assert part.partition_array(keys) is None
        # just inside the modulus still packs
        self._check(part, [HASH_MODULUS - 1, -(HASH_MODULUS - 1)])

    def test_range_matches(self):
        part = RangePartitioner([10, 20, 30])
        self._check(part, [-5, 9, 10, 11, 20, 29, 30, 31, 1000])

    def test_range_empty_bounds(self):
        part = RangePartitioner([])
        got = part.partition_array(np.array([1, 2, 3], dtype=np.int64))
        assert got.tolist() == [0, 0, 0]

    def test_range_refuses_non_int_bounds(self):
        part = RangePartitioner([1.5, 2.5])
        assert part.partition_array(
            np.array([1, 2], dtype=np.int64)) is None

    def test_explicit_without_array_func_refuses(self):
        part = ExplicitPartitioner(4, lambda k: k // 10)
        assert part.partition_array(
            np.array([1, 2], dtype=np.int64)) is None

    def test_explicit_with_array_func_matches(self):
        part = ExplicitPartitioner(4, lambda k: k // 10,
                                   array_func=lambda ks: ks // 10)
        self._check(part, [0, 9, 10, 45, 399])

    def test_explicit_broken_array_func_falls_back(self):
        part = ExplicitPartitioner(
            4, lambda k: 0, array_func=lambda ks: 1 / 0)
        assert part.partition_array(
            np.array([1], dtype=np.int64)) is None


class TestKeyPacking:
    def test_plain_ints_pack(self):
        keys = pack_int_keys([(3, "a"), (-7, "b")])
        assert keys.dtype == np.int64
        assert keys.tolist() == [3, -7]

    def test_bool_and_numpy_keys_refuse(self):
        assert pack_int_keys([(True, 1)]) is None
        assert pack_int_keys([(np.int64(3), 1)]) is None
        assert pack_int_keys([(3, 1), ("x", 2)]) is None

    def test_bignum_keys_refuse(self):
        assert pack_int_keys([(1 << 70, 1)]) is None

    def test_empty_refuses(self):
        assert pack_int_keys([]) is None


class TestValueCodecs:
    def test_float_column_roundtrips_bit_exact(self):
        values = [0.1, -0.0, 1e300, 5e-324, float("inf"), 2.5]
        packed = pack_values(values)
        assert isinstance(packed, ScalarValues)
        out = packed.unpack()
        assert pickle.dumps(out) == pickle.dumps(values)
        assert packed.nbytes == 8 * len(values)

    def test_int_column_roundtrips(self):
        values = [5, -3, 2**62, 0]
        packed = pack_values(values)
        out = packed.unpack()
        assert out == values
        assert all(type(v) is int for v in out)

    def test_mixed_and_numpy_scalars_refuse(self):
        assert pack_values([1, 2.0]) is None
        assert pack_values([np.float64(1.0), np.float64(2.0)]) is None
        assert pack_values([1, True]) is None
        assert pack_values([2**70, 1]) is None

    def test_pair_column_roundtrips(self):
        values = [(3, 0.5), (9, -1.25), (0, 2.0)]
        packed = pack_values(values)
        out = packed.unpack()
        assert pickle.dumps(out) == pickle.dumps(values)
        assert packed.nbytes == 2 * 8 * len(values)

    def test_ragged_pairs_refuse(self):
        assert pack_values([(1, 2.0), (1, 2.0, 3.0)]) is None
        assert pack_values([(1, 2.0), (1.5, 2.0)]) is None

    def test_array_column_roundtrips_and_gathers(self):
        rng = np.random.default_rng(0)
        values = [rng.random((2, 3)), rng.random((4, 1)),
                  np.zeros((0, 2))]
        packed = pack_values(values)
        out = packed.unpack()
        assert pickle.dumps(out) == pickle.dumps(values)
        idx = np.array([2, 0])
        gathered = packed.gather(idx).unpack()
        assert pickle.dumps(gathered) \
            == pickle.dumps([values[2], values[0]])

    def test_array_column_exact_nbytes(self):
        values = [np.ones(10), np.ones(6)]
        packed = pack_values(values)
        # payload + per-record lengths + shapes
        assert packed.nbytes == 16 * 8 + 2 * 8 + 2 * 8

    def test_large_arrays_ship_by_reference(self):
        # packing copies the payload; past the mean-bytes limit the
        # copies cost more than the per-record framing they save
        per_record = VALUE_PACK_BYTE_LIMIT // 8
        assert pack_values([np.ones(per_record),
                            np.ones(per_record)]) is None
        small = [np.ones(per_record - 1), np.ones(per_record - 1)]
        assert isinstance(pack_values(small), ArrayValues)

    def test_mixed_dtype_and_fortran_arrays_refuse(self):
        assert pack_values([np.ones(2), np.ones(2, dtype=np.int64)]) is None
        fortran = np.asfortranarray(np.ones((3, 3)))
        assert pack_values([fortran, np.ones((3, 3))]) is None
        assert pack_values([np.array(1.0)]) is None  # 0-d

    def test_pack_records_and_batch_nbytes(self):
        records = [(1, 2.0), (9, 3.5)]
        batch = pack_records(records)
        assert isinstance(batch, RecordBatch)
        assert batch.records() == records
        assert batch.nbytes == 2 * 8 + 2 * 8
        assert len(batch) == 2

    def test_segment_reports_batch_bytes(self):
        segment = BatchSegment(pack_records([(1, 2.0)]), True)
        assert segment.nbytes == 16
        assert segment.combined is True


class TestGroupIndices:
    def test_preserves_record_order_per_bucket(self):
        pids = np.array([2, 0, 2, 1, 0, 2], dtype=np.int64)
        groups = group_indices_by_partition(pids, 4)
        assert [g.tolist() for g in groups] \
            == [[1, 4], [3], [0, 2, 5], []]


def _dict_fold(keys, data, fold):
    merged = {}
    for key, value in zip(keys, data):
        merged[key] = fold(merged[key], value) if key in merged else value
    return merged


class TestCombineRuns:
    @pytest.mark.parametrize("kernel,fold", [
        ("sum", lambda a, b: a + b),
        ("min", min),
        ("max", max),
    ])
    def test_bit_identical_to_python_fold(self, kernel, fold):
        rng = random.Random(42)
        keys = [rng.randrange(20) for _ in range(500)]
        # adversarial magnitudes: catastrophic-cancellation territory
        data = [rng.random() * 10 ** rng.randrange(-8, 9)
                for _ in range(500)]
        expected = _dict_fold(keys, data, fold)
        out = combine_runs(np.array(keys, dtype=np.int64),
                           np.array(data, dtype=np.float64), kernel)
        assert out is not None
        out_keys, out_data = out
        assert out_keys.tolist() == list(expected.keys())
        assert pickle.dumps(out_data.tolist()) \
            == pickle.dumps(list(expected.values()))

    def test_int_sum_exact(self):
        keys = np.array([3, 1, 3, 1, 3], dtype=np.int64)
        data = np.array([10, -2, 30, 4, 1], dtype=np.int64)
        out_keys, out_data = combine_runs(keys, data, "sum")
        assert out_keys.tolist() == [3, 1]
        assert out_data.tolist() == [41, 2]

    def test_int_sum_overflow_risk_refuses(self):
        keys = np.array([0, 0], dtype=np.int64)
        data = np.array([1 << 62, 1], dtype=np.int64)
        assert combine_runs(keys, data, "sum") is None

    def test_min_max_refuse_nan(self):
        keys = np.array([0, 0], dtype=np.int64)
        data = np.array([1.0, float("nan")])
        assert combine_runs(keys, data, "min") is None
        assert combine_runs(keys, data, "max") is None

    def test_first_appearance_order(self):
        keys = np.array([9, 2, 9, 5, 2], dtype=np.int64)
        data = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        out_keys, _ = combine_runs(keys, data, "sum")
        assert out_keys.tolist() == [9, 2, 5]

    def test_unknown_kernel_rejected_by_shuffle(self):
        with ClusterContext(num_executors=2) as ctx:
            pairs = ctx.parallelize([(1, 2.0)], 1)
            with pytest.raises(EngineError):
                pairs.reduce_by_key(lambda a, b: a + b,
                                    combine_kernel="median").collect()


# ----------------------------------------------------------------------
# randomized end-to-end property: columnar == generic, byte for byte
# ----------------------------------------------------------------------

def _int_keys(rng, n):
    return [rng.randrange(-50, 50) for _ in range(n)]


def _tuple_keys(rng, n):
    return [(rng.randrange(5), rng.randrange(5)) for _ in range(n)]


def _string_keys(rng, n):
    return [f"k{rng.randrange(30)}" for _ in range(n)]


KEY_MAKERS = {"int": _int_keys, "tuple": _tuple_keys,
              "string": _string_keys}


def _value(rng):
    return rng.random() * 10 ** rng.randrange(-6, 7)


def _op_reduce(pairs_rdd):
    return pairs_rdd.reduce_by_key(lambda a, b: a + b,
                                   combine_kernel="sum").collect()


def _op_reduce_no_kernel(pairs_rdd):
    return pairs_rdd.reduce_by_key(lambda a, b: a + b).collect()


def _op_group(pairs_rdd):
    return pairs_rdd.group_by_key().collect()


def _op_cogroup(pairs_rdd):
    other = pairs_rdd.map_values(lambda v: -v)
    return pairs_rdd.cogroup(other).collect()


def _op_join(pairs_rdd):
    other = pairs_rdd.map_values(lambda v: v * 2)
    return pairs_rdd.join(other).count()


OPS = {"reduce": _op_reduce, "reduce_no_kernel": _op_reduce_no_kernel,
       "group": _op_group, "cogroup": _op_cogroup, "join": _op_join}


class TestColumnarGenericProperty:
    @pytest.mark.parametrize("key_kind", sorted(KEY_MAKERS))
    @pytest.mark.parametrize("op_name", sorted(OPS))
    @pytest.mark.parametrize("use_threads", [False, True],
                             ids=["serial", "threaded"])
    def test_byte_identity(self, key_kind, op_name, use_threads):
        rng = random.Random(hash((key_kind, op_name)) & 0xFFFF)
        data = [(k, _value(rng))
                for k in KEY_MAKERS[key_kind](rng, 400)]

        def run(columnar):
            toggle = enable_columnar() if columnar else disable_columnar()
            with toggle, ClusterContext(num_executors=4,
                                        use_threads=use_threads) as ctx:
                return OPS[op_name](ctx.parallelize(data, 6))

        assert pickle.dumps(run(True)) == pickle.dumps(run(False))

    def test_int_keyed_sum_actually_ships_batches(self):
        data = [(i % 13, float(i)) for i in range(300)]
        with ClusterContext(num_executors=2) as ctx:
            before = ctx.metrics.snapshot()
            ctx.parallelize(data, 4).reduce_by_key(
                lambda a, b: a + b, combine_kernel="sum").collect()
            delta = ctx.metrics.snapshot() - before
        assert delta.shuffle_batches > 0
        # map-side combine leaves 13 keys per map task at most
        assert delta.shuffle_batch_records == delta.shuffle_records

    def test_string_keys_fall_back_without_batches(self):
        data = [(f"k{i % 13}", float(i)) for i in range(300)]
        with ClusterContext(num_executors=2) as ctx:
            before = ctx.metrics.snapshot()
            ctx.parallelize(data, 4).reduce_by_key(
                lambda a, b: a + b).collect()
            delta = ctx.metrics.snapshot() - before
        assert delta.shuffle_batches == 0
        assert delta.shuffle_records > 0


class TestNarrowShuffleAnnotation:
    def test_narrow_path_emits_span_and_timing(self):
        part = HashPartitioner(4)
        with ClusterContext(num_executors=2, trace=True) as ctx:
            pairs = ctx.parallelize(
                [(i % 11, float(i)) for i in range(110)], 4) \
                .partition_by(part).cache()
            pairs.collect()  # materialize the placement shuffle
            before = ctx.metrics.snapshot()
            pairs.reduce_by_key(lambda a, b: a + b,
                                combine_kernel="sum").collect()
            delta = ctx.metrics.snapshot() - before
            # the co-partitioned reduce moves nothing
            assert delta.shuffles_performed == 0
            kinds = [t.kind for t in ctx.metrics.stage_timings]
            assert "narrow_shuffle" in kinds
            spans = [s for s in ctx.tracer.spans()
                     if s.name == "narrow_shuffle"]
        assert spans
        assert all(s.attrs.get("narrow") is True for s in spans)
        assert all(s.attrs.get("records", 0) >= 0 for s in spans)

    def test_narrow_vectorized_combine_matches_generic(self):
        part = HashPartitioner(3)

        def run(columnar):
            toggle = enable_columnar() if columnar else disable_columnar()
            with toggle, ClusterContext(num_executors=2) as ctx:
                pairs = ctx.parallelize(
                    [(i % 7, 0.1 * i) for i in range(70)], 3) \
                    .partition_by(part)
                return pairs.reduce_by_key(
                    lambda a, b: a + b, combine_kernel="sum").collect()

        assert pickle.dumps(run(True)) == pickle.dumps(run(False))


class TestExactSizing:
    def test_packed_shuffle_reports_exact_bytes(self):
        # 4 map partitions x up to 5 keys, int keys + float values:
        # exactly 16 bytes per surviving record
        data = [(i % 5, float(i)) for i in range(100)]
        with ClusterContext(num_executors=2) as ctx:
            before = ctx.metrics.snapshot()
            ctx.parallelize(data, 4).reduce_by_key(
                lambda a, b: a + b, combine_kernel="sum").collect()
            delta = ctx.metrics.snapshot() - before
        assert delta.shuffle_bytes == delta.shuffle_records * 16
