"""The continuous telemetry plane: sampler, store, health, exporters.

Covers the contracts ISSUE 8 pins down: the ring-buffer store stays
bounded, the sampler collects gauges from every subsystem without
perturbing results (byte-identity with telemetry off, across all three
backends), the Prometheus/JSON endpoints serve live data, the JSONL
sink rotates and replays into ``repro top``, health rules fire on
transitions (not continuously), and shutdown leaves no thread behind.
"""

import json
import pickle
import threading
import time
import urllib.request

import pytest

from repro.engine import ClusterContext
from repro.engine.metrics import COUNTER_FIELDS
from repro.engine.telemetry import (
    DEFAULT_INTERVAL_S,
    HealthMonitor,
    LedgerHighWatermark,
    SpillRateSpike,
    TelemetrySampler,
    TelemetrySink,
    TimeSeriesStore,
    WorkerHeartbeats,
    load_telemetry_jsonl,
    pid_alive,
    prometheus_text,
    snapshot_from_records,
)
from repro.engine.top import render_dashboard, run_top, sparkline


def _run_job(ctx):
    pairs = ctx.parallelize([(i % 7, float(i)) for i in range(500)], 4)
    return sorted(pairs.map(lambda kv: (kv[0], kv[1] * 2))
                  .reduce_by_key(lambda a, b: a + b).collect())


class TestTimeSeriesStore:
    def test_ring_buffer_stays_bounded(self):
        store = TimeSeriesStore(capacity=16)
        for i in range(100):
            store.record({"t": float(i), "gauges": {"g": i}})
        points = store.series("g")
        assert len(points) == 16
        assert points[0] == (84.0, 84)
        assert points[-1] == (99.0, 99)
        assert store.num_samples() == 100

    def test_counters_and_workers_flatten_into_series(self):
        store = TimeSeriesStore()
        store.record({"t": 1.0, "gauges": {"cache.resident_bytes": 10},
                      "counters": {"tasks_launched": 4},
                      "workers": {"123": {"alive": True, "tasks": 2,
                                          "last_task_s": 0.5}}})
        assert store.latest("counter.tasks_launched") == 4
        assert store.latest("worker.123.alive") == 1
        assert store.latest("worker.123.last_task_s") == 0.5
        assert "cache.resident_bytes" in store.names()

    def test_rate_differentiates_cumulative_series(self):
        store = TimeSeriesStore()
        for t, value in [(0.0, 0), (1.0, 10), (2.0, 30)]:
            store.record({"t": t, "gauges": {}, "counters": {"c": value}})
        assert store.rate("counter.c", window_s=10.0) \
            == pytest.approx(15.0)
        rates = store.rate_series("counter.c")
        assert [r for _t, r in rates] == [pytest.approx(10.0),
                                          pytest.approx(20.0)]

    def test_rate_of_missing_or_single_point_is_zero(self):
        store = TimeSeriesStore()
        assert store.rate("nope") == 0.0
        store.record({"t": 1.0, "gauges": {"g": 5}})
        assert store.rate("g") == 0.0


class TestWorkerHeartbeats:
    def test_register_beat_and_rows(self):
        beats = WorkerHeartbeats()
        beats.register([111, 222])
        beats.beat(111, task_wall_s=0.25)
        rows = beats.rows()
        assert rows[111]["tasks"] == 1
        assert rows[111]["last_task_s"] == 0.25
        assert rows[222]["tasks"] == 0
        assert beats.known_count() == 2
        assert beats.alive_count() == 2

    def test_reap_dead_marks_gone_processes(self):
        import multiprocessing as mp

        proc = mp.Process(target=lambda: None)
        proc.start()
        proc.join()  # reaped -> pid is fully gone
        beats = WorkerHeartbeats()
        beats.register([proc.pid])
        assert beats.reap_dead() == [proc.pid]
        assert not beats.rows()[proc.pid]["alive"]
        # idempotent: already-marked corpses are not re-reported
        assert beats.reap_dead() == []

    def test_pid_alive_on_self(self):
        import os

        assert pid_alive(os.getpid())


class TestSamplerCollection:
    def test_sampler_collects_every_subsystem(self):
        ctx = ClusterContext(num_executors=2, use_threads=True,
                             cache_budget_bytes=1 << 20)
        try:
            sampler = TelemetrySampler(ctx, interval=60.0)
            _run_job(ctx)
            sample = sampler.sample_once()
            gauges = sample["gauges"]
            for name in ("cache.resident_bytes", "cache.spilled_bytes",
                         "cache.blocks", "cache.pressure",
                         "shm.segments", "shm.resident_bytes",
                         "pool.busy_threads", "pool.queued_tasks",
                         "scheduler.ready_stages",
                         "scheduler.inflight_stages"):
                assert name in gauges, name
            # every engine counter rides along, by name
            assert set(sample["counters"]) == set(COUNTER_FIELDS)
            assert sample["counters"]["tasks_launched"] > 0
            sampler.stop()
        finally:
            ctx.shutdown()

    def test_background_thread_accumulates_samples(self):
        ctx = ClusterContext(num_executors=2, telemetry_interval=0.05)
        try:
            _run_job(ctx)
            time.sleep(0.25)
            assert ctx.telemetry_sampler.store.num_samples() >= 3
            assert ctx.telemetry_sampler.running
        finally:
            ctx.shutdown()
        assert ctx.telemetry_sampler is None

    def test_telemetry_off_means_no_sampler(self):
        with ClusterContext(num_executors=2) as ctx:
            assert ctx.telemetry_sampler is None
            assert ctx.telemetry_server is None

    def test_interval_must_be_positive(self):
        ctx = ClusterContext(num_executors=2)
        try:
            with pytest.raises(ValueError):
                TelemetrySampler(ctx, interval=0.0)
        finally:
            ctx.shutdown()

    def test_sampler_holds_context_weakly(self):
        import weakref

        ctx = ClusterContext(num_executors=2)
        sampler = TelemetrySampler(ctx, interval=60.0)
        ref = weakref.ref(ctx)
        ctx.shutdown()
        del ctx
        # the sampler alone must not keep the context alive
        import gc

        gc.collect()
        assert ref() is None
        assert sampler.sample_once() is None
        sampler.stop()


class TestShutdownLifecycle:
    def test_shutdown_stops_threads_and_flushes_sink(self, tmp_path):
        path = str(tmp_path / "run.telemetry.jsonl")
        ctx = ClusterContext(num_executors=2, telemetry_interval=0.05,
                             telemetry_path=path)
        sampler = ctx.telemetry_sampler
        server = ctx.serve_telemetry()
        _run_job(ctx)
        before = threading.active_count()
        ctx.shutdown()
        assert not sampler.running
        assert sampler.sink is None  # closed and detached
        assert ctx.telemetry_server is None
        assert threading.active_count() < before
        # the sink flushed a valid, replayable log
        snapshot = load_telemetry_jsonl(path)
        assert snapshot["num_samples"] >= 1
        # the server socket is closed
        with pytest.raises(Exception):
            urllib.request.urlopen(server.url + "/health", timeout=0.5)

    def test_shutdown_takes_a_final_sample(self):
        ctx = ClusterContext(num_executors=2, telemetry_interval=60.0)
        sampler = ctx.telemetry_sampler
        initial = sampler.store.num_samples()
        _run_job(ctx)
        ctx.shutdown()
        assert sampler.store.num_samples() > initial
        assert sampler.store.latest("counter.jobs_run") >= 1


class TestHttpEndpoints:
    def test_endpoints_serve_live_gauges_during_a_job(self):
        ctx = ClusterContext(num_executors=2, telemetry_interval=0.25)
        try:
            server = ctx.serve_telemetry()
            _run_job(ctx)
            ctx.telemetry_sampler.sample_once()
            with urllib.request.urlopen(
                    server.url + "/metrics", timeout=5) as response:
                text = response.read().decode()
                ctype = response.headers["Content-Type"]
            assert ctype.startswith("text/plain")
            assert "spangle_tasks_launched_total" in text
            assert "spangle_cache_resident_bytes" in text
            assert "spangle_health_ok 1" in text
            with urllib.request.urlopen(
                    server.url + "/telemetry.json", timeout=5) as response:
                snap = json.loads(response.read())
            assert snap["counters"]["jobs_run"] >= 1
            assert snap["num_samples"] >= 1
            assert "counter.tasks_launched" in snap["series"]
            with urllib.request.urlopen(
                    server.url + "/health", timeout=5) as response:
                health = json.loads(response.read())
            assert health["status"] == "ok"
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(server.url + "/nope", timeout=5)
        finally:
            ctx.shutdown()

    def test_serve_telemetry_starts_sampler_when_off(self):
        ctx = ClusterContext(num_executors=2)
        try:
            assert ctx.telemetry_sampler is None
            server = ctx.serve_telemetry()
            assert ctx.telemetry_sampler is not None
            assert ctx.telemetry_sampler.interval == DEFAULT_INTERVAL_S
            # idempotent: a second call returns the same server
            assert ctx.serve_telemetry() is server
        finally:
            ctx.shutdown()


class TestPrometheusText:
    def test_format_shape(self):
        snapshot = {
            "counters": {"tasks_launched": 12, "jobs_run": 3},
            "gauges": {"cache.resident_bytes": 4096,
                       "pool.busy_threads": 2},
            "workers": {"42": {"alive": True, "tasks": 7,
                               "last_task_s": 0.125},
                        "43": {"alive": False, "tasks": 1}},
            "health": {"status": "warn", "events": [{"rule": "x"}]},
            "up_s": 1.5,
        }
        text = prometheus_text(snapshot)
        lines = text.splitlines()
        assert "spangle_tasks_launched_total 12" in lines
        assert "# TYPE spangle_tasks_launched_total counter" in lines
        assert "spangle_cache_resident_bytes 4096" in lines
        assert "# TYPE spangle_cache_resident_bytes gauge" in lines
        assert 'spangle_worker_alive{pid="42"} 1' in lines
        assert 'spangle_worker_alive{pid="43"} 0' in lines
        assert 'spangle_worker_tasks_total{pid="42"} 7' in lines
        assert 'spangle_worker_last_task_seconds{pid="42"} 0.125' \
            in lines
        assert "spangle_health_ok 0" in lines
        assert text.endswith("\n")

    def test_counters_follow_counter_fields_order(self):
        snapshot = {"counters": {name: 1 for name in COUNTER_FIELDS},
                    "gauges": {}, "workers": {}, "health": {}}
        text = prometheus_text(snapshot)
        for name in COUNTER_FIELDS:
            assert f"spangle_{name}_total 1" in text

    def test_scheduler_gauges_render(self):
        """The pipelined scheduler's readiness gauges flow through the
        sampler into the Prometheus text unprefixed-by-pool."""
        snapshot = {
            "counters": {},
            "gauges": {"scheduler.ready_stages": 3,
                       "scheduler.inflight_stages": 2},
            "workers": {}, "health": {},
        }
        text = prometheus_text(snapshot)
        lines = text.splitlines()
        assert "spangle_scheduler_ready_stages 3" in lines
        assert "# TYPE spangle_scheduler_ready_stages gauge" in lines
        assert "spangle_scheduler_inflight_stages 2" in lines


class TestJsonlSink:
    def test_meta_line_then_samples(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        sink = TelemetrySink(path, meta={"backend": "thread"})
        sink.write({"type": "sample", "t": 1.0, "gauges": {"g": 1}})
        sink.close()
        lines = [json.loads(line)
                 for line in open(path, encoding="utf-8")]
        assert lines[0]["type"] == "meta"
        assert lines[0]["format"] == "repro-telemetry"
        assert lines[0]["backend"] == "thread"
        assert lines[1] == {"type": "sample", "t": 1.0,
                            "gauges": {"g": 1}}

    def test_rotation_bounds_disk_usage(self, tmp_path):
        import os

        path = str(tmp_path / "t.jsonl")
        sink = TelemetrySink(path, rotate_bytes=2048)
        record = {"type": "sample", "t": 0.0,
                  "gauges": {"g": "x" * 100}}
        for _ in range(200):
            sink.write(record)
        sink.close()
        assert os.path.exists(path + ".1")
        assert os.path.getsize(path) <= 2048
        assert os.path.getsize(path + ".1") <= 2048
        # both generations start with a meta line
        for gen in (path, path + ".1"):
            first = json.loads(open(gen, encoding="utf-8").readline())
            assert first["type"] == "meta"

    def test_snapshot_from_records_replays_health(self):
        records = [
            {"type": "meta", "format": "repro-telemetry", "version": 1,
             "backend": "process"},
            {"type": "sample", "t": 1.0, "gauges": {"g": 1},
             "counters": {"jobs_run": 1}, "workers": {}},
            {"type": "health", "t": 1.5, "rule": "spill_rate_spike",
             "severity": "warning", "message": "spiking", "attrs": {}},
            {"type": "sample", "t": 2.0, "gauges": {"g": 3},
             "counters": {"jobs_run": 2}, "workers": {}},
        ]
        snap = snapshot_from_records(records)
        assert snap["meta"]["backend"] == "process"
        assert snap["gauges"]["g"] == 3
        assert snap["num_samples"] == 2
        assert snap["health"]["status"] == "warn"
        assert snap["health"]["events"][0]["rule"] == "spill_rate_spike"
        assert snap["series"]["g"] == [[1.0, 1], [2.0, 3]]


class TestHealthMonitor:
    def test_events_fire_on_transition_not_continuously(self):
        monitor = HealthMonitor(rules=[LedgerHighWatermark(0.9)])
        store = TimeSeriesStore()
        hot = {"t": 1.0, "gauges": {"cache.budget_bytes": 100,
                                    "cache.resident_bytes": 95}}
        cool = {"t": 2.0, "gauges": {"cache.budget_bytes": 100,
                                     "cache.resident_bytes": 10}}
        assert len(monitor.evaluate(hot, store, None)) == 1
        # still hot: no re-emission while the condition holds
        assert monitor.evaluate(hot, store, None) == []
        assert monitor.status() == "warn"
        # recovery clears the condition; the next violation re-fires
        monitor.evaluate(cool, store, None)
        assert monitor.status() == "ok"
        assert len(monitor.evaluate(hot, store, None)) == 1
        assert len(monitor.events()) == 2

    def test_spill_rate_rule_reads_the_store(self):
        monitor = HealthMonitor(
            rules=[SpillRateSpike(per_second=5.0, window_s=10.0)])
        store = TimeSeriesStore()
        store.record({"t": 0.0, "counters": {"cache_spills": 0}})
        store.record({"t": 1.0, "counters": {"cache_spills": 100}})
        sample = {"t": 1.0, "gauges": {}}
        events = monitor.evaluate(sample, store, None)
        assert len(events) == 1
        assert events[0].rule == "spill_rate_spike"
        assert events[0].attrs["spills_per_s"] == pytest.approx(100.0)

    def test_events_bridge_into_the_trace_stream(self):
        from repro.engine.tracing import SPAN_KINDS, Tracer

        assert "health" in SPAN_KINDS
        tracer = Tracer(enabled=True)
        monitor = HealthMonitor(tracer=tracer)
        monitor.emit("worker_heartbeat_missed", "warning",
                     "worker 99 gone", pid=99)
        spans = tracer.spans()
        assert len(spans) == 1
        assert spans[0].kind == "health"
        assert spans[0].name == "worker_heartbeat_missed"
        assert spans[0].attrs["pid"] == 99

    def test_configure_adjusts_default_rule_thresholds(self):
        monitor = HealthMonitor()
        monitor.configure(ledger_watermark=0.5, spill_rate_per_s=1.0,
                          heartbeat_miss_s=2.0, skew_threshold=9.0)
        by_type = {type(rule).__name__: rule for rule in monitor.rules}
        assert by_type["LedgerHighWatermark"].watermark == 0.5
        assert by_type["SpillRateSpike"].per_second == 1.0
        assert by_type["WorkerHeartbeatMissed"].miss_after_s == 2.0
        assert by_type["ShuffleSkew"].threshold == 9.0

    def test_health_report_renders(self):
        with ClusterContext(num_executors=2,
                            telemetry_interval=60.0) as ctx:
            _run_job(ctx)
            report = ctx.health()
            assert report.status == "ok"
            assert "Health: OK" in str(report)
            assert report.as_dict()["samples"] >= 1

    def test_health_works_with_telemetry_off(self):
        with ClusterContext(num_executors=2) as ctx:
            # a genuinely dead ledger row, the way fault paths leave
            # one: a child process that has already exited
            import multiprocessing as mp

            child = mp.Process(target=lambda: None)
            child.start()
            child.join()
            ctx.worker_heartbeats.register([child.pid])
            ctx.health_monitor.emit(
                "worker_heartbeat_missed", "warning",
                f"worker {child.pid} stopped responding",
                dedup_key=f"worker_heartbeat_missed:{child.pid}",
                pid=child.pid)
            # health() evaluates the rules even with no sampler: the
            # dead row is still there, so the condition holds
            report = ctx.health()
            assert report.status == "warn"
            assert "stopped responding" in str(report)
            # once the row is retired (what the respawn path does),
            # the next report clears to ok — no stuck warning
            ctx.worker_heartbeats.forget([child.pid])
            assert ctx.health().status == "ok"


class TestDeterminismContract:
    """Sampler on vs off must be byte-identical for job results."""

    @pytest.mark.parametrize("kwargs", [
        {},                                        # serial
        {"use_threads": True},                     # thread
        {"backend": "process"},                    # process
    ], ids=["serial", "thread", "process"])
    def test_results_byte_identical_with_telemetry(self, kwargs):
        with ClusterContext(num_executors=2, **kwargs) as ctx:
            plain = _run_job(ctx)
            plain_counters = ctx.metrics.snapshot()
        with ClusterContext(num_executors=2, telemetry_interval=0.02,
                            **kwargs) as ctx:
            sampled = _run_job(ctx)
            sampled_counters = ctx.metrics.snapshot()
        assert pickle.dumps(plain) == pickle.dumps(sampled)
        # the sampler is read-only: logical counters agree too
        assert plain_counters == sampled_counters


class TestTopDashboard:
    def test_sparkline_scales_and_pads(self):
        line = sparkline([0, 1, 2, 3], width=8)
        assert len(line) == 8
        assert line.endswith("█")
        assert sparkline([], width=5) == "     "
        # constant non-zero series shows a flat low bar, not blanks
        assert set(sparkline([5, 5], width=2)) == {"▁"}

    def test_render_from_recorded_jsonl(self, tmp_path):
        path = str(tmp_path / "run.telemetry.jsonl")
        with ClusterContext(num_executors=2, telemetry_interval=0.05,
                            telemetry_path=path) as ctx:
            _run_job(ctx)
            time.sleep(0.15)
        snapshot = load_telemetry_jsonl(path)
        frame = render_dashboard(snapshot)
        assert "repro top" in frame
        assert "[memory]" in frame
        assert "[tasks]" in frame
        assert "[shuffle]" in frame
        assert "[health]" in frame
        assert "jobs=1" in frame
        # the pipelined scheduler's readiness gauges ride in [tasks]
        assert "ready" in frame
        assert "inflight" in frame

    def test_run_top_replay_exit_codes(self, tmp_path, capsys):
        path = str(tmp_path / "run.telemetry.jsonl")
        with ClusterContext(num_executors=2, telemetry_interval=0.05,
                            telemetry_path=path) as ctx:
            _run_job(ctx)
        assert run_top(path, replay=True) == 0
        assert "repro top" in capsys.readouterr().out
        assert run_top(str(tmp_path / "missing.jsonl"),
                       replay=True) == 2

    def test_run_top_live_once(self, capsys):
        ctx = ClusterContext(num_executors=2, telemetry_interval=0.25)
        try:
            server = ctx.serve_telemetry()
            _run_job(ctx)
            ctx.telemetry_sampler.sample_once()
            assert run_top(server.url, once=True) == 0
            out = capsys.readouterr().out
            assert "repro top" in out
            assert "[health]" in out
        finally:
            ctx.shutdown()

    def test_cli_wires_the_top_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "run.telemetry.jsonl")
        with ClusterContext(num_executors=2, telemetry_interval=0.05,
                            telemetry_path=path) as ctx:
            _run_job(ctx)
        assert main(["top", str(path), "--replay"]) == 0
        assert "repro top" in capsys.readouterr().out


class TestReportDriftGuards:
    """The reports, the telemetry plane, and the registry must agree
    on one source of truth: metrics.COUNTER_FIELDS."""

    def test_report_counters_subset_of_counter_fields(self):
        from repro.engine.explain import REPORT_COUNTERS

        unknown = set(REPORT_COUNTERS) - set(COUNTER_FIELDS)
        assert not unknown, (
            f"explain.REPORT_COUNTERS not in COUNTER_FIELDS: "
            f"{sorted(unknown)}")

    def test_sampled_counters_are_exactly_counter_fields(self):
        with ClusterContext(num_executors=2) as ctx:
            sampler = TelemetrySampler(ctx, interval=60.0)
            sample = sampler.sample_once()
            sampler.stop()
        assert set(sample["counters"]) == set(COUNTER_FIELDS)

    def test_memory_report_surfaces_optimizer_counters(self):
        with ClusterContext(num_executors=2) as ctx:
            from repro.engine.explain import memory_report

            report = memory_report(ctx)
        assert "optimizer_rules_fired" in report
        assert "optimizer_chunks_pruned" in report

    def test_stage_breakdown_appends_report_counters(self):
        from repro.engine.explain import stage_breakdown
        from repro.engine.metrics import MetricsSnapshot, StageTiming

        timings = [StageTiming("s", "result", 0.01, 2)]
        counters = MetricsSnapshot(optimizer_rules_fired=3,
                                   worker_respawns=1)
        text = stage_breakdown(timings, counters=counters)
        assert "optimizer_rules_fired: 3" in text
        assert "worker_respawns: 1" in text
        # counters that did not move stay out of the report
        assert "shm_bytes_mapped" not in text
        # and no counters line at all when nothing moved
        assert "counters:" not in stage_breakdown(
            timings, counters=MetricsSnapshot())


class TestNnzTelemetry:
    """ISSUE 9: the sparse execution tier's skew visibility."""

    def test_stats_gauges_shape(self):
        from repro.engine.telemetry import NnzBalanceStats

        stats = NnzBalanceStats()
        assert stats.gauges() == {}
        assert stats.last() == (None, None)
        stats.record("matmul-k", [10.0, 30.0, 20.0])
        assert stats.last() == ("matmul-k", [10.0, 30.0, 20.0])
        gauges = stats.gauges()
        assert gauges["partition_max"] == 30.0
        assert gauges["partition_mean"] == pytest.approx(20.0)
        assert gauges["imbalance"] == pytest.approx(1.5)
        assert gauges["partitions"] == 3
        stats.clear()
        assert stats.gauges() == {}

    def test_collect_sample_exposes_nnz_gauges(self):
        from repro.engine.telemetry import collect_sample

        ctx = ClusterContext(num_executors=2)
        ctx.nnz_stats.record("graph-load", [5.0, 15.0])
        sample = collect_sample(ctx)
        assert sample["gauges"]["nnz.imbalance"] == pytest.approx(1.5)
        assert sample["gauges"]["nnz.partitions"] == 2

    def test_imbalance_rule_fires_and_dedups_per_stage(self):
        from repro.engine.telemetry import NnzImbalance

        ctx = ClusterContext(num_executors=2)
        monitor = HealthMonitor(rules=[NnzImbalance(threshold=2.0)])
        store = TimeSeriesStore()
        ctx.nnz_stats.record("matmul-gather", [1.0, 1.0, 10.0])
        skewed = {"t": 1.0, "gauges": {"nnz.imbalance": 2.5}}
        events = monitor.evaluate(skewed, store, ctx)
        assert len(events) == 1
        assert events[0].rule == "nnz_imbalance"
        assert "matmul-gather" in events[0].message
        assert events[0].attrs["imbalance"] == 2.5
        # same stage still hot: no re-emission
        assert monitor.evaluate(skewed, store, ctx) == []
        # balanced placement clears; a later skew re-fires
        balanced = {"t": 2.0, "gauges": {"nnz.imbalance": 1.1}}
        monitor.evaluate(balanced, store, ctx)
        assert monitor.status() == "ok"
        assert len(monitor.evaluate(skewed, store, ctx)) == 1

    def test_configure_sets_nnz_threshold(self):
        monitor = HealthMonitor()
        monitor.configure(nnz_imbalance=7.5)
        by_type = {type(rule).__name__: rule
                   for rule in monitor.rules}
        assert by_type["NnzImbalance"].threshold == 7.5

    def test_nnz_gauges_reach_prometheus_and_top(self):
        ctx = ClusterContext(num_executors=2,
                             telemetry_interval=60.0)
        try:
            ctx.nnz_stats.record("partition_by_nnz", [2.0, 6.0])
            ctx.telemetry_sampler.sample_once()
            snapshot = ctx.telemetry_sampler.snapshot()
            text = prometheus_text(snapshot)
            assert "spangle_nnz_imbalance" in text
            assert "nnz skew" in render_dashboard(snapshot)
        finally:
            ctx.shutdown()

    def test_partition_by_nnz_records_loads(self):
        import numpy as np

        from repro.core import ArrayRDD

        ctx = ClusterContext(num_executors=4, default_parallelism=4)
        rng = np.random.default_rng(5)
        dense = rng.random((64, 64))
        dense[rng.random((64, 64)) >= 0.05] = 0.0
        arr = ArrayRDD.from_numpy(ctx, dense, (8, 8),
                                  valid=dense != 0)
        balanced = arr.partition_by_nnz(4)
        stage, loads = ctx.nnz_stats.last()
        assert stage == "partition_by_nnz"
        assert len(loads) == 4
        values, _valid = balanced.collect_dense(fill=0.0)
        np.testing.assert_array_equal(values, dense)
        measured = balanced.nnz_by_partition()
        assert sum(measured) == int((dense != 0).sum())
        stage, _loads = ctx.nnz_stats.last()
        assert stage == "measured"

    def test_graph_nnz_balance_records_loads(self):
        import numpy as np

        from repro.ml import BitmaskGraph

        ctx = ClusterContext(num_executors=2, default_parallelism=2)
        rng = np.random.default_rng(11)
        edges = rng.integers(0, 64, size=(300, 2))
        graph = BitmaskGraph.from_edges(ctx, edges, 64,
                                        block_size=16,
                                        balance="nnz")
        stage, loads = ctx.nnz_stats.last()
        assert stage == "graph-load"
        assert sum(loads) == graph.num_edges()
