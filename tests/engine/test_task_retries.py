"""Tests for task retry (Spark's spark.task.maxFailures behaviour)."""

import pytest

from repro.engine import ClusterContext
from repro.errors import EngineError, TaskFailure


class Flaky:
    """Fails the first ``failures`` calls per record, then succeeds."""

    def __init__(self, failures: int):
        self.failures = failures
        self.attempts = {}

    def __call__(self, x):
        seen = self.attempts.get(x, 0)
        self.attempts[x] = seen + 1
        if seen < self.failures:
            raise IOError(f"transient failure for {x}")
        return x * 2


class TestTaskRetries:
    def test_transient_failure_recovers(self):
        ctx = ClusterContext(num_executors=2, task_retries=3)
        flaky = Flaky(failures=1)
        got = ctx.parallelize([1, 2, 3], 1).map(flaky).collect()
        assert got == [2, 4, 6]
        # each record trips the task once (pipelined lazily, a retry
        # re-runs the whole partition and reaches one record further)
        assert ctx.metrics.task_retries == 3

    def test_exhausted_retries_surface_last_error(self):
        ctx = ClusterContext(num_executors=2, task_retries=2)
        flaky = Flaky(failures=99)
        with pytest.raises(TaskFailure) as excinfo:
            ctx.parallelize([7], 1).map(flaky).collect()
        assert isinstance(excinfo.value.cause, IOError)
        # 1 original attempt + 2 retries
        assert flaky.attempts[7] == 3
        assert ctx.metrics.task_retries == 2

    def test_zero_retries_fails_fast(self):
        ctx = ClusterContext(num_executors=2, task_retries=0)
        flaky = Flaky(failures=1)
        with pytest.raises(TaskFailure):
            ctx.parallelize([1], 1).map(flaky).collect()
        assert flaky.attempts[1] == 1

    def test_negative_retries_rejected(self):
        with pytest.raises(EngineError):
            ClusterContext(task_retries=-1)

    def test_no_retries_recorded_on_success(self):
        ctx = ClusterContext(num_executors=2, task_retries=3)
        ctx.parallelize(range(10), 2).map(lambda x: x).collect()
        assert ctx.metrics.task_retries == 0

    def test_retry_with_shuffle_downstream(self):
        ctx = ClusterContext(num_executors=2, task_retries=2)
        flaky = Flaky(failures=1)
        pairs = ctx.parallelize([(1, 2), (1, 3)], 1) \
                   .map(lambda kv: (kv[0], flaky(kv[1])))
        # the flaky map sits under a shuffle map stage: Flaky fails the
        # first access to each record value; the stage must still finish
        got = dict(pairs.reduce_by_key(lambda a, b: a + b).collect())
        assert got == {1: 10}
