"""The adaptive memory manager: ledger, eviction policies, real spill,
and density repacking on admission."""

import os
import pickle
import threading

import numpy as np
import pytest

from repro.core import ArrayRDD, Chunk, ChunkMode
from repro.engine import (
    CacheManager,
    ClusterContext,
    ClusterCostModel,
    MetricsRegistry,
    StorageLevel,
    memory_report,
)
from repro.engine import spill as spill_mod
from repro.engine.sizing import estimate_partition_size, estimate_size


def make_cache(policy="lru", budget=None, **kwargs):
    metrics = MetricsRegistry()
    cache = CacheManager(metrics, budget_bytes=budget,
                         eviction_policy=policy,
                         cost_model=ClusterCostModel(), **kwargs)
    return metrics, cache


def chunk_partition(mode, density, cells=512, seed=0):
    """One cached partition: ``(chunk_id, Chunk)`` records of one mode."""
    rng = np.random.default_rng(seed)
    records = []
    for chunk_id in range(3):
        valid = rng.random(cells) < density
        valid[chunk_id] = True          # never fully empty
        values = rng.standard_normal(cells)
        records.append(
            (chunk_id, Chunk.from_dense(values, valid, mode=mode)))
    return records


class TestByteLedger:
    def test_used_bytes_is_a_running_total(self):
        _metrics, cache = make_cache()
        assert cache.used_bytes() == 0
        data_a = [bytes(500)]
        data_b = [bytes(300)]
        cache.put(1, 0, data_a)
        cache.put(1, 1, data_b)
        expected = (estimate_partition_size(data_a)
                    + estimate_partition_size(data_b))
        assert cache.used_bytes() == expected
        cache.drop_partition(1, 0)
        assert cache.used_bytes() == estimate_partition_size(data_b)
        cache.drop_rdd(1)
        assert cache.used_bytes() == 0

    def test_overwrite_replaces_size_not_adds(self):
        _metrics, cache = make_cache()
        cache.put(1, 0, [bytes(500)])
        cache.put(1, 0, [bytes(100)])
        assert cache.used_bytes() == estimate_partition_size([bytes(100)])

    def test_ledger_matches_block_sum_after_eviction_storm(self):
        _metrics, cache = make_cache(budget=3000)
        for i in range(20):
            cache.put(1, i, [bytes(400)], allow_spill=(i % 2 == 0))
        resident = sum(cache._infos[key].size for key in cache._blocks)
        assert cache.used_bytes() == resident
        assert cache.used_bytes() <= 3000

    def test_clear_resets_everything(self):
        _metrics, cache = make_cache(budget=900)
        cache.put(1, 0, [bytes(400)], allow_spill=True)
        cache.put(1, 1, [bytes(400)], allow_spill=True)
        cache.put(1, 2, [bytes(400)], allow_spill=True)
        assert cache.spilled_count() > 0
        cache.clear()
        assert cache.used_bytes() == 0
        assert cache.block_count() == 0
        assert cache.spilled_count() == 0


class TestConcurrency:
    def test_concurrent_put_get_under_tight_budget(self):
        _metrics, cache = make_cache(budget=5000)
        errors = []

        def worker(worker_id):
            try:
                for i in range(50):
                    key = (worker_id, i % 7)
                    cache.put(key[0], key[1], [bytes(300 + i)],
                              allow_spill=(i % 3 == 0))
                    cache.get(key[0], key[1])
                    if i % 5 == 0:
                        cache.drop_partition(key[0], key[1])
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(w,))
                   for w in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        resident = sum(cache._infos[key].size for key in cache._blocks)
        assert cache.used_bytes() == resident
        assert cache.used_bytes() <= 5000 or cache.block_count() == 1


class TestSpill:
    def test_spill_frees_ram_and_reload_is_byte_identical(self):
        metrics, cache = make_cache(budget=700)
        victim = [(i, float(i)) for i in range(40)]
        reference = pickle.dumps(victim)
        cache.put(1, 0, victim, allow_spill=True)
        cache.put(2, 0, [bytes(600)])
        # the victim is out of RAM, on disk, and its file really exists
        assert cache.block_count() == 1
        assert cache.spilled_count() == 1
        assert metrics.cache_spills == 1
        assert metrics.disk_write_bytes == cache.spilled_bytes()
        path = next(iter(cache._spilled.values())).path
        assert os.path.getsize(path) == cache.spilled_bytes()
        found, reloaded = cache.get(1, 0)
        assert found
        assert pickle.dumps(reloaded) == reference
        assert metrics.cache_reloads == 1
        assert metrics.disk_read_bytes == metrics.disk_write_bytes

    @pytest.mark.parametrize("mode,density", [
        (ChunkMode.DENSE, 0.9),
        (ChunkMode.SPARSE, 0.2),
        (ChunkMode.SUPER_SPARSE, 0.002),
    ])
    def test_chunk_spill_roundtrip_all_modes(self, mode, density):
        records = chunk_partition(mode, density)
        encoded = spill_mod.encode_block(records)
        decoded = spill_mod.decode_block(encoded)
        assert pickle.dumps(decoded) == pickle.dumps(records)

    def test_chunk_spill_through_cache(self):
        records = chunk_partition(ChunkMode.SUPER_SPARSE, 0.002)
        _metrics, cache = make_cache(budget=100)
        cache.put(1, 0, records, allow_spill=True)
        cache.put(2, 0, [bytes(80)])
        assert cache.spilled_count() == 1
        found, reloaded = cache.get(1, 0)
        assert found
        assert pickle.dumps(reloaded) == pickle.dumps(records)

    def test_put_purges_stale_spill(self):
        _metrics, cache = make_cache(budget=700)
        cache.put(1, 0, ["old", bytes(400)], allow_spill=True)
        cache.put(2, 0, [bytes(600)])
        assert cache.spilled_count() == 1
        stale_path = next(iter(cache._spilled.values())).path
        cache.put(1, 0, ["new"], allow_spill=True)
        assert cache.spilled_count() == 0
        assert not os.path.exists(stale_path)
        found, data = cache.get(1, 0)
        assert found and data == ["new"]

    def test_drop_partition_removes_spill_file(self):
        _metrics, cache = make_cache(budget=700)
        cache.put(1, 0, [bytes(400)], allow_spill=True)
        cache.put(2, 0, [bytes(600)])
        path = next(iter(cache._spilled.values())).path
        assert cache.drop_partition(1, 0)
        assert not os.path.exists(path)
        found, _ = cache.get(1, 0)
        assert not found

    def test_memory_only_victim_is_not_spilled(self):
        metrics, cache = make_cache(budget=700)
        cache.put(1, 0, [bytes(400)], allow_spill=False)
        cache.put(2, 0, [bytes(600)], allow_spill=True)
        assert cache.spilled_count() == 0
        assert metrics.cache_spills == 0
        assert metrics.cache_evictions == 1


class TestEvictionPolicies:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            make_cache(policy="random")

    def test_lru_evicts_oldest(self):
        _metrics, cache = make_cache(policy="lru", budget=1100)
        cache.put(1, 0, [bytes(500)], allow_spill=False)
        cache.put(2, 0, [bytes(500)], allow_spill=False)
        cache.get(1, 0)                  # freshen rdd 1
        cache.put(3, 0, [bytes(500)], allow_spill=False)
        assert not cache.contains(2, 0)
        assert cache.contains(1, 0)

    def test_cost_aware_keeps_expensive_blocks(self):
        # LRU order says evict the shuffle output (oldest); the
        # cost-aware score says the shallow narrow block is ~5000x
        # cheaper per byte to bring back, so it goes instead — even
        # though it was stored last.
        _metrics, cache = make_cache(policy="cost", budget=1100)
        cache.put(1, 0, [bytes(500)], allow_spill=False,
                  lineage_depth=4, shuffle_depth=2)   # shuffle output
        cache.put(2, 0, [bytes(500)], allow_spill=True)  # spillable
        cache.put(3, 0, [bytes(500)], allow_spill=False,
                  lineage_depth=1, shuffle_depth=0)   # cheap narrow
        assert not cache.contains(3, 0)
        assert cache.contains(1, 0)
        assert cache.contains(2, 0)

    def test_cost_aware_prefers_spilling_over_losing_shuffles(self):
        # with only a spillable block and a shuffle output resident,
        # the spillable one is the cheaper bring-back: it goes to disk
        # rather than the shuffle output being recomputed
        metrics, cache = make_cache(policy="cost", budget=1100)
        cache.put(1, 0, [bytes(500)], allow_spill=False,
                  lineage_depth=4, shuffle_depth=2)
        cache.put(2, 0, [bytes(500)], allow_spill=True)
        cache.put(3, 0, [bytes(500)], allow_spill=False,
                  lineage_depth=5, shuffle_depth=3)
        assert not cache.contains(2, 0) or cache.spilled_count() == 1
        assert cache.contains(1, 0)
        assert metrics.cache_spills == 1

    def test_lineage_hints_flow_from_rdds(self):
        ctx = ClusterContext(num_executors=2, default_parallelism=2)
        base = ctx.parallelize([(i % 3, i) for i in range(12)], 2)
        narrow = base.map(lambda kv: kv).cache()
        wide = base.reduce_by_key(lambda a, b: a + b).cache()
        narrow.collect()
        wide.collect()
        narrow_info = ctx.cache._infos[(narrow.rdd_id, 0)]
        wide_info = ctx.cache._infos[(wide.rdd_id, 0)]
        assert narrow_info.shuffle_depth == 0
        assert wide_info.shuffle_depth == 1
        assert wide_info.lineage_depth >= narrow_info.lineage_depth


class TestLineageRecovery:
    def test_recompute_after_drop_with_budgeted_cache(self):
        ctx = ClusterContext(num_executors=2, default_parallelism=2,
                             cache_budget_bytes=50_000)
        rdd = ctx.parallelize(range(100), 4) \
                 .map(lambda x: x * 3) \
                 .persist(StorageLevel.MEMORY)
        expected = rdd.collect()
        assert ctx.cache.drop_partition(rdd.rdd_id, 1)
        assert rdd.collect() == expected
        assert ctx.metrics.recomputations == 1

    def test_spilled_then_dropped_block_recomputes(self):
        ctx = ClusterContext(num_executors=2, default_parallelism=2,
                             cache_budget_bytes=1500)
        rdd = ctx.parallelize([bytes(600)] * 4, 4) \
                 .persist(StorageLevel.MEMORY_AND_DISK)
        assert rdd.count() == 4
        assert ctx.cache.spilled_count() > 0
        spilled_key = next(iter(ctx.cache._spilled))
        assert ctx.cache.drop_partition(*spilled_key)
        assert rdd.count() == 4


class TestExactChunkSizing:
    @pytest.mark.parametrize("mode,density", [
        (ChunkMode.DENSE, 0.9),
        (ChunkMode.SPARSE, 0.2),
        (ChunkMode.SUPER_SPARSE, 0.002),
    ])
    def test_estimate_size_is_chunk_exact(self, mode, density):
        [(_cid, chunk)] = chunk_partition(mode, density)[:1]
        expected = int(chunk.payload.nbytes)
        mask = chunk.mask
        if mode is ChunkMode.SUPER_SPARSE:
            expected += int(mask._upper.words.nbytes)
            expected += int(mask._stored_words.nbytes)
            expected += int(mask._stored_prefix.nbytes)
        else:
            expected += int(mask.words.nbytes)
        assert estimate_size(chunk) == expected

    def test_milestone_cache_is_counted(self):
        [(_cid, chunk)] = chunk_partition(ChunkMode.SPARSE, 0.2)[:1]
        before = estimate_size(chunk)
        # a rank query lazily builds the milestone cache
        chunk.mask.rank(chunk.num_cells // 2, "milestone")
        after = estimate_size(chunk)
        assert chunk.mask._milestones is not None
        assert after == before + chunk.mask._milestones.nbytes


class TestRepackOnAdmission:
    def _sparse_dense_rdd(self, ctx):
        rng = np.random.default_rng(11)
        data = rng.standard_normal((64, 64))
        valid = rng.random((64, 64)) < 0.05
        return ArrayRDD.from_numpy(ctx, data, (16, 16), valid=valid,
                                   mode=ChunkMode.DENSE)

    def test_admission_repacks_and_counts(self):
        ctx = ClusterContext(num_executors=2, repack_on_admission=True)
        arr = self._sparse_dense_rdd(ctx).cache()
        arr.num_chunks_materialized()
        assert ctx.metrics.chunks_repacked > 0
        assert ctx.metrics.repack_bytes_saved > 0

    def test_repacking_shrinks_resident_bytes_and_preserves_data(self):
        plain = ClusterContext(num_executors=2)
        packed = ClusterContext(num_executors=2, repack_on_admission=True)
        a = self._sparse_dense_rdd(plain).cache()
        b = self._sparse_dense_rdd(packed).cache()
        dense_a = a.collect_dense()
        dense_b = b.collect_dense()
        np.testing.assert_array_equal(dense_a[1], dense_b[1])
        np.testing.assert_allclose(
            dense_a[0][dense_a[1]], dense_b[0][dense_b[1]])
        assert packed.cache.used_bytes() < plain.cache.used_bytes()

    def test_repack_off_by_default_preserves_forced_modes(self):
        ctx = ClusterContext(num_executors=2)
        arr = self._sparse_dense_rdd(ctx).cache()
        arr.num_chunks_materialized()
        modes = {c.mode for _cid, c in arr.rdd.collect()}
        assert modes == {ChunkMode.DENSE}
        assert ctx.metrics.chunks_repacked == 0

    def test_repack_operator_fused_matches_eager(self):
        from repro.core import disable_fusion

        def run(ctx):
            rng = np.random.default_rng(3)
            data = rng.standard_normal((32, 32))
            arr = ArrayRDD.from_numpy(ctx, data, (8, 8))
            out = arr.filter(lambda v: v > 1.5).repack()
            return out.rdd.collect(), ctx.metrics.chunks_repacked

        fused_records, fused_count = run(ClusterContext(num_executors=2))
        with disable_fusion():
            eager_records, eager_count = run(
                ClusterContext(num_executors=2))
        assert pickle.dumps(sorted(fused_records)) == \
            pickle.dumps(sorted(eager_records))
        assert fused_count == eager_count


class TestBudgetedDeterminism:
    def _run(self, use_threads):
        ctx = ClusterContext(num_executors=4, default_parallelism=4,
                             cache_budget_bytes=30_000,
                             use_threads=use_threads,
                             eviction_policy="cost",
                             repack_on_admission=True)
        rng = np.random.default_rng(5)
        data = rng.standard_normal((48, 48))
        valid = rng.random((48, 48)) < 0.3
        arr = ArrayRDD.from_numpy(ctx, data, (12, 12), valid=valid,
                                  mode=ChunkMode.DENSE)
        arr._collapse().persist(StorageLevel.MEMORY_AND_DISK)
        pairs = ctx.parallelize(
            [(i % 13, float(i)) for i in range(2000)], 4) \
            .persist(StorageLevel.MEMORY_AND_DISK)
        out = []
        for _round in range(3):
            out.append(sorted(
                pairs.reduce_by_key(lambda a, b: a + b).collect()))
            out.append(arr.sum())
            out.append(sorted(arr.rdd.collect()))
        return pickle.dumps(out)

    def test_serial_and_threaded_byte_identical_under_pressure(self):
        assert self._run(False) == self._run(True)


class TestMemoryReport:
    def test_report_mentions_the_adaptive_counters(self):
        ctx = ClusterContext(num_executors=2, cache_budget_bytes=1500,
                             eviction_policy="cost",
                             repack_on_admission=True)
        rdd = ctx.parallelize([bytes(600)] * 4, 4) \
                 .persist(StorageLevel.MEMORY_AND_DISK)
        rdd.count()
        text = memory_report(ctx)
        assert "policy: cost" in text
        assert "chunks_repacked" in text
        assert "spills" in text
        assert f"{ctx.cache.used_bytes():,} B" in text
