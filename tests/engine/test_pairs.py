"""Tests for pair-RDD operations: shuffles, joins, partitioning."""

import pytest

from repro.engine import ClusterContext, HashPartitioner, RangePartitioner
from repro.engine.lineage import count_shuffle_boundaries
from repro.engine.partitioner import ExplicitPartitioner


@pytest.fixture()
def ctx():
    return ClusterContext(num_executors=4, default_parallelism=4)


class TestAggregations:
    def test_reduce_by_key(self, ctx):
        rdd = ctx.parallelize([(i % 3, i) for i in range(12)], 4)
        assert sorted(rdd.reduce_by_key(lambda a, b: a + b).collect()) == [
            (0, 18), (1, 22), (2, 26)
        ]

    def test_group_by_key(self, ctx):
        rdd = ctx.parallelize([("a", 1), ("b", 2), ("a", 3)], 3)
        grouped = dict(rdd.group_by_key().collect())
        assert sorted(grouped["a"]) == [1, 3]
        assert grouped["b"] == [2]

    def test_combine_by_key_average(self, ctx):
        rdd = ctx.parallelize([("x", 1.0), ("x", 3.0), ("y", 5.0)], 2)
        sums = rdd.combine_by_key(
            lambda v: (v, 1),
            lambda acc, v: (acc[0] + v, acc[1] + 1),
            lambda a, b: (a[0] + b[0], a[1] + b[1]),
        ).map_values(lambda acc: acc[0] / acc[1])
        assert sorted(sums.collect()) == [("x", 2.0), ("y", 5.0)]

    def test_map_side_combine_reduces_shuffle_records(self, ctx):
        data = [(0, 1)] * 100
        before = ctx.metrics.snapshot()
        ctx.parallelize(data, 4).reduce_by_key(lambda a, b: a + b).collect()
        with_combine = (ctx.metrics.snapshot() - before).shuffle_records

        before = ctx.metrics.snapshot()
        ctx.parallelize(data, 4).group_by_key().collect()
        without_combine = (ctx.metrics.snapshot() - before).shuffle_records
        assert with_combine < without_combine

    def test_count_by_key(self, ctx):
        rdd = ctx.parallelize([("a", 0), ("a", 1), ("b", 0)], 2)
        assert rdd.count_by_key() == {"a": 2, "b": 1}

    def test_map_values_preserves_partitioner(self, ctx):
        part = HashPartitioner(4)
        rdd = ctx.parallelize([(i, i) for i in range(8)], 4) \
                 .partition_by(part)
        assert rdd.map_values(lambda v: v + 1).partitioner == part


class TestJoins:
    def test_inner_join(self, ctx):
        left = ctx.parallelize([(1, "a"), (2, "b"), (2, "c")], 2)
        right = ctx.parallelize([(2, "x"), (3, "y")], 2)
        assert sorted(left.join(right).collect()) == [
            (2, ("b", "x")), (2, ("c", "x"))
        ]

    def test_left_outer_join(self, ctx):
        left = ctx.parallelize([(1, "a"), (2, "b")], 2)
        right = ctx.parallelize([(2, "x")], 1)
        assert sorted(left.left_outer_join(right).collect()) == [
            (1, ("a", None)), (2, ("b", "x"))
        ]

    def test_full_outer_join(self, ctx):
        left = ctx.parallelize([(1, "a")], 1)
        right = ctx.parallelize([(2, "x")], 1)
        assert sorted(left.full_outer_join(right).collect()) == [
            (1, ("a", None)), (2, (None, "x"))
        ]

    def test_cogroup(self, ctx):
        left = ctx.parallelize([(1, "a"), (1, "b")], 2)
        right = ctx.parallelize([(1, "x"), (2, "y")], 2)
        groups = dict(left.cogroup(right).collect())
        assert sorted(groups[1][0]) == ["a", "b"]
        assert groups[1][1] == ["x"]
        assert groups[2] == [[], ["y"]]

    def test_join_of_copartitioned_rdds_is_narrow(self, ctx):
        part = HashPartitioner(4)
        left = ctx.parallelize([(i, i) for i in range(20)], 4) \
                  .partition_by(part)
        right = ctx.parallelize([(i, -i) for i in range(20)], 4) \
                   .partition_by(part)
        left.collect()
        right.collect()

        joined = left.join(right, partitioner=part)
        # the cogroup itself adds zero shuffle boundaries beyond the two
        # partition_by shuffles already in the lineage
        assert count_shuffle_boundaries(joined) == 2
        before = ctx.metrics.snapshot()
        result = sorted(joined.collect())
        assert result == [(i, (i, -i)) for i in range(20)]


class TestPartitioning:
    def test_partition_by_places_keys(self, ctx):
        part = HashPartitioner(3)
        rdd = ctx.parallelize([(i, None) for i in range(30)], 5) \
                 .partition_by(part)
        for index, records in enumerate(rdd.glom().collect()):
            for key, _value in records:
                assert part.partition(key) == index

    def test_partition_by_same_partitioner_is_noop(self, ctx):
        part = HashPartitioner(3)
        rdd = ctx.parallelize([(i, None) for i in range(9)], 3) \
                 .partition_by(part)
        assert rdd.partition_by(part) is rdd

    def test_explicit_partitioner(self, ctx):
        part = ExplicitPartitioner(4, lambda key: key // 10, tag="rows")
        rdd = ctx.parallelize([(i, None) for i in range(40)], 4) \
                 .partition_by(part)
        for index, records in enumerate(rdd.glom().collect()):
            for key, _value in records:
                assert (key // 10) % 4 == index

    def test_range_partitioner_orders_keys(self, ctx):
        part = RangePartitioner.from_keys(range(100), 4)
        assert part.num_partitions == 4
        previous = -1
        for bound in part.bounds:
            assert bound > previous
            previous = bound
        assert part.partition(0) == 0
        assert part.partition(99) == 3

    def test_sort_by_key(self, ctx):
        data = [(k, -k) for k in (5, 1, 9, 3, 7, 2, 8)]
        rdd = ctx.parallelize(data, 3).sort_by_key()
        assert rdd.keys().collect() == sorted(k for k, _v in data)

    def test_lookup_with_partitioner_scans_one_partition(self, ctx):
        part = HashPartitioner(4)
        rdd = ctx.parallelize([(i, i * i) for i in range(16)], 4) \
                 .partition_by(part).cache()
        rdd.collect()
        before = ctx.metrics.snapshot()
        assert rdd.lookup(7) == [49]
        delta = ctx.metrics.snapshot() - before
        assert delta.tasks_launched == 1

    def test_lookup_without_partitioner(self, ctx):
        rdd = ctx.parallelize([(1, "a"), (2, "b"), (1, "c")], 3)
        assert sorted(rdd.lookup(1)) == ["a", "c"]


class TestShuffleAccounting:
    def test_shuffle_bytes_grow_with_data(self, ctx):
        small = ctx.parallelize([(i % 7, float(i)) for i in range(100)], 4)
        large = ctx.parallelize([(i % 7, float(i)) for i in range(2000)], 4)

        before = ctx.metrics.snapshot()
        small.group_by_key().collect()
        small_bytes = (ctx.metrics.snapshot() - before).shuffle_bytes

        before = ctx.metrics.snapshot()
        large.group_by_key().collect()
        large_bytes = (ctx.metrics.snapshot() - before).shuffle_bytes
        assert large_bytes > small_bytes * 5

    def test_narrow_shuffle_moves_no_bytes(self, ctx):
        part = HashPartitioner(4)
        rdd = ctx.parallelize([(i, i) for i in range(40)], 4) \
                 .partition_by(part).cache()
        rdd.collect()
        before = ctx.metrics.snapshot()
        rdd.reduce_by_key(lambda a, b: a + b, partitioner=part).collect()
        delta = ctx.metrics.snapshot() - before
        assert delta.shuffle_bytes == 0
        assert delta.shuffles_performed == 0
