"""The stage scheduler's determinism contract and executor pool.

Serial (``use_threads=False``, the default), threaded, and
process-backend execution must return byte-identical results and
identical logical metrics — jobs, stages, tasks, shuffle records/bytes
— across every lineage shape the engine supports, including under
fault injection. The pipelined scheduler (overlapped stage execution,
the default on parallel contexts) must match the barrier scheduler
(``disable_pipelining()``) the same way. Task *ordering* and
wall-clock observations are allowed to differ.
"""

import contextlib
import pickle
import random
import threading
import time

import pytest

from repro.engine import (
    ClusterContext,
    ExecutorPool,
    HashPartitioner,
    disable_columnar,
    disable_pipelining,
    pipelining_enabled,
)
from repro.engine.explain import stage_breakdown
from repro.engine.tracing import logical_tree
from repro.errors import TaskFailure

# counters that must not depend on the execution mode
LOGICAL_FIELDS = (
    "jobs_run",
    "stages_run",
    "tasks_launched",
    "shuffle_records",
    "shuffle_bytes",
    "shuffles_performed",
    "shuffle_batches",
    "shuffle_batch_records",
    "disk_read_bytes",
    "disk_write_bytes",
    "recomputations",
    "task_retries",
)


def _scenario_narrow_chain(ctx):
    return (
        ctx.parallelize(range(200), 8)
        .map(lambda x: x * 3)
        .filter(lambda x: x % 2 == 0)
        .collect()
    )


def _scenario_reduce_by_key(ctx):
    pairs = ctx.parallelize([(i % 7, i) for i in range(210)], 6)
    return pairs.reduce_by_key(lambda a, b: a + b).collect()


def _scenario_group_by_key(ctx):
    pairs = ctx.parallelize([(i % 5, i * i) for i in range(100)], 5)
    return pairs.group_by_key().collect()


def _scenario_cogroup(ctx):
    left = ctx.parallelize([(i % 4, i) for i in range(40)], 4)
    right = ctx.parallelize([(i % 4, -i) for i in range(28)], 4)
    return left.cogroup(right).collect()


def _scenario_join(ctx):
    left = ctx.parallelize([(i % 6, i) for i in range(60)], 4)
    right = ctx.parallelize([(i % 6, chr(65 + i % 6)) for i in range(12)], 3)
    return left.join(right).collect()


def _scenario_nested_shuffles(ctx):
    pairs = ctx.parallelize([(i % 9, i) for i in range(180)], 6)
    first = pairs.reduce_by_key(lambda a, b: a + b)
    rekeyed = first.map(lambda kv: (kv[0] % 3, kv[1]))
    return rekeyed.reduce_by_key(lambda a, b: a + b,
                                 partitioner=HashPartitioner(3)).collect()


def _scenario_narrowed_shuffle(ctx):
    part = HashPartitioner(4)
    pairs = ctx.parallelize([(i % 11, i) for i in range(110)], 4) \
               .partition_by(part)
    return pairs.reduce_by_key(lambda a, b: a + b,
                               partitioner=part).collect()


def _scenario_union_distinct(ctx):
    left = ctx.parallelize(range(50), 4)
    right = ctx.parallelize(range(25, 75), 4)
    return left.union(right).distinct().collect()


def _scenario_checkpoint(ctx):
    pairs = ctx.parallelize([(i % 4, i) for i in range(80)], 4)
    summed = pairs.reduce_by_key(lambda a, b: a + b).checkpoint()
    return summed.map_values(lambda v: v * 2).collect()


def _scenario_fail_partition(ctx):
    rdd = ctx.parallelize(range(48), 4).map(lambda x: x + 1).cache()
    first = rdd.collect()
    assert ctx.fail_partition(rdd, 2)
    return first + rdd.collect()


def _scenario_invalidate_shuffle(ctx):
    pairs = ctx.parallelize([(i % 3, i) for i in range(30)], 3)
    summed = pairs.reduce_by_key(lambda a, b: a + b)
    first = summed.collect()
    summed.invalidate_shuffle()
    return first + summed.collect()


SCENARIOS = {
    "narrow_chain": _scenario_narrow_chain,
    "reduce_by_key": _scenario_reduce_by_key,
    "group_by_key": _scenario_group_by_key,
    "cogroup": _scenario_cogroup,
    "join": _scenario_join,
    "nested_shuffles": _scenario_nested_shuffles,
    "narrowed_shuffle": _scenario_narrowed_shuffle,
    "union_distinct": _scenario_union_distinct,
    "checkpoint": _scenario_checkpoint,
    "fail_partition": _scenario_fail_partition,
    "invalidate_shuffle": _scenario_invalidate_shuffle,
}


def _run(use_threads, scenario, columnar=True, backend="thread",
         pipelined=True):
    toggle = contextlib.nullcontext() if columnar else disable_columnar()
    sched = contextlib.nullcontext() if pipelined else disable_pipelining()
    with toggle, sched, \
            ClusterContext(num_executors=4, use_threads=use_threads,
                           backend=backend) as ctx:
        before = ctx.metrics.snapshot()
        result = scenario(ctx)
        delta = ctx.metrics.snapshot() - before
    return result, delta


class TestDeterminismContract:
    @pytest.mark.parametrize("columnar", [True, False],
                             ids=["columnar", "generic"])
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_serial_and_threaded_identical(self, name, columnar):
        scenario = SCENARIOS[name]
        serial_result, serial_delta = _run(False, scenario, columnar)
        threaded_result, threaded_delta = _run(True, scenario, columnar)
        # byte-identical results, ordering included
        assert pickle.dumps(serial_result) == pickle.dumps(threaded_result)
        for field_name in LOGICAL_FIELDS:
            assert getattr(serial_delta, field_name) \
                == getattr(threaded_delta, field_name), field_name

    @pytest.mark.parametrize("columnar", [True, False],
                             ids=["columnar", "generic"])
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_serial_and_process_identical(self, name, columnar):
        """The process backend holds the same contract as threading:
        forked workers, shared-memory block exchange and all, not one
        byte or logical counter may differ from serial execution."""
        scenario = SCENARIOS[name]
        serial_result, serial_delta = _run(False, scenario, columnar)
        process_result, process_delta = _run(False, scenario, columnar,
                                             backend="process")
        assert pickle.dumps(serial_result) == pickle.dumps(process_result)
        for field_name in LOGICAL_FIELDS:
            assert getattr(serial_delta, field_name) \
                == getattr(process_delta, field_name), field_name

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_columnar_matches_generic(self, name):
        """The packed shuffle data plane is an invisible optimization:
        switching it off must not change a single result byte."""
        scenario = SCENARIOS[name]
        columnar_result, _ = _run(False, scenario, columnar=True)
        generic_result, _ = _run(False, scenario, columnar=False)
        assert pickle.dumps(columnar_result) == pickle.dumps(generic_result)

    def test_narrowed_shuffle_moves_nothing_in_both_modes(self):
        for use_threads in (False, True):
            _result, delta = _run(use_threads, _scenario_narrowed_shuffle)
            # one shuffle from partition_by; the co-partitioned
            # reduce_by_key narrows and moves nothing extra
            assert delta.shuffles_performed == 1


def _random_dag_scenario(seed):
    """A deterministic random multi-shuffle DAG built from ``seed``.

    Joins, cogroups, and union+reduce combine random pair-RDD leaves
    until one remains — diamonds and chains of varying width, always
    over ``(int, int)`` records so every mode shuffles the same bytes.
    """

    def scenario(ctx):
        rng = random.Random(seed)

        def leaf():
            n = rng.randint(20, 60)
            k = rng.randint(3, 7)
            return ctx.parallelize([(i % k, i) for i in range(n)],
                                   rng.randint(2, 4))

        rdds = [leaf() for _ in range(rng.randint(2, 4))]
        while len(rdds) > 1:
            a = rdds.pop(rng.randrange(len(rdds)))
            b = rdds.pop(rng.randrange(len(rdds)))
            op = rng.choice(("join", "cogroup", "union_reduce"))
            if op == "join":
                merged = a.join(b).map_values(lambda v: v[0] + v[1])
            elif op == "cogroup":
                merged = a.cogroup(b).map_values(
                    lambda groups: sum(groups[0]) - sum(groups[1]))
            else:
                merged = a.union(b).reduce_by_key(lambda x, y: x + y)
            if rng.random() < 0.5:
                merged = merged.map_values(lambda v: v * 2)
            rdds.append(merged)
        return rdds[0].collect()

    return scenario


class TestPipelinedContract:
    """pipelined == barrier byte-identity, across all three backends."""

    MODES = {
        "serial": dict(use_threads=False, backend="thread"),
        "thread": dict(use_threads=True, backend="thread"),
        "process": dict(use_threads=False, backend="process"),
    }

    # the process backend forks workers per context, so it covers the
    # multi-stage scenarios (where pipelining actually engages) rather
    # than re-running every single-stage shape at fork cost
    PROCESS_SCENARIOS = ("cogroup", "join", "nested_shuffles")

    @pytest.mark.parametrize("mode", ["serial", "thread", "process"])
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_pipelined_matches_barrier(self, name, mode):
        if mode == "process" and name not in self.PROCESS_SCENARIOS:
            pytest.skip("process backend covers multi-stage scenarios")
        scenario = SCENARIOS[name]
        kwargs = self.MODES[mode]
        barrier_result, barrier_delta = _run(
            scenario=scenario, pipelined=False, **kwargs)
        pipelined_result, pipelined_delta = _run(
            scenario=scenario, pipelined=True, **kwargs)
        assert pickle.dumps(barrier_result) \
            == pickle.dumps(pipelined_result)
        for field_name in LOGICAL_FIELDS:
            assert getattr(barrier_delta, field_name) \
                == getattr(pipelined_delta, field_name), field_name

    @pytest.mark.parametrize("mode", ["serial", "thread", "process"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_randomized_dag_contract(self, seed, mode):
        scenario = _random_dag_scenario(seed)
        kwargs = self.MODES[mode]
        barrier_result, barrier_delta = _run(
            scenario=scenario, pipelined=False, **kwargs)
        pipelined_result, pipelined_delta = _run(
            scenario=scenario, pipelined=True, **kwargs)
        assert pickle.dumps(barrier_result) \
            == pickle.dumps(pipelined_result)
        for field_name in LOGICAL_FIELDS:
            assert getattr(barrier_delta, field_name) \
                == getattr(pipelined_delta, field_name), field_name


class TestPipelinedScheduling:
    """DAG-shape behavior of the event-driven scheduler."""

    @staticmethod
    def _diamond(ctx, delay=0.0):
        def slow(kv):
            if delay:
                time.sleep(delay)
            return kv

        left = ctx.parallelize([(i % 4, i) for i in range(8)], 2) \
                  .map(slow)
        right = ctx.parallelize([(i % 4, -i) for i in range(8)], 2) \
                   .map(slow)
        return left.cogroup(right)

    def test_diamond_overlap_and_identity(self):
        """The two independent sides of a cogroup overlap in time under
        the pipelined scheduler, and the bytes match barrier mode."""
        with disable_pipelining(), \
                ClusterContext(num_executors=4, use_threads=True) as ctx:
            barrier = self._diamond(ctx, delay=0.05).collect()
        with ClusterContext(num_executors=4, use_threads=True,
                            trace=True) as ctx:
            pipelined = self._diamond(ctx, delay=0.05).collect()
            spans = {span.name: span for span in ctx.tracer.spans()
                     if span.kind == "shuffle"}
            left, right = spans["cogroup[0]"], spans["cogroup[1]"]
            # both sides launched before either finished
            assert left.start_s < right.end_s
            assert right.start_s < left.end_s
            assert left.attrs["depends_on"] == []
            assert left.attrs["launched_at"] >= left.attrs["ready_at"]
        assert pickle.dumps(barrier) == pickle.dumps(pipelined)

    def test_logical_trace_matches_barrier(self):
        """Span names, kinds, parent edges, and non-timing attributes
        are identical between barrier and pipelined runs."""

        def scenario(ctx):
            left = ctx.parallelize([(i % 4, i) for i in range(24)], 3)
            right = ctx.parallelize([(i % 4, -i) for i in range(24)], 3)
            return left.join(right).collect()

        with disable_pipelining(), \
                ClusterContext(num_executors=4, use_threads=True,
                               trace=True) as ctx:
            barrier_result = scenario(ctx)
            barrier_tree = logical_tree(ctx.tracer.spans())
        with ClusterContext(num_executors=4, use_threads=True,
                            trace=True) as ctx:
            pipelined_result = scenario(ctx)
            pipelined_tree = logical_tree(ctx.tracer.spans())
        assert barrier_result == pipelined_result
        assert barrier_tree == pipelined_tree

    def test_stage_graph_edges(self):
        """Chained shuffles produce chained dependency edges; the
        result stage depends on the last one."""
        with ClusterContext(num_executors=2) as ctx:
            pairs = ctx.parallelize([(i % 9, i) for i in range(18)], 3)
            first = pairs.reduce_by_key(lambda a, b: a + b)
            second = first.map(lambda kv: (kv[0] % 3, kv[1])) \
                .reduce_by_key(lambda a, b: a + b,
                               partitioner=HashPartitioner(3))
            stages, result_deps = ctx.scheduler.stage_graph(second)
            assert len(stages) == 2
            assert stages[0].deps == []
            assert stages[1].deps == [stages[0]]
            assert stages[0].children == [stages[1]]
            assert result_deps == [stages[1]]
            assert stages[1].depends_on() == [stages[0].edge_name]

    def test_diamond_stage_graph_is_independent(self):
        with ClusterContext(num_executors=2) as ctx:
            grouped = self._diamond(ctx)
            stages, result_deps = ctx.scheduler.stage_graph(grouped)
            assert len(stages) == 2
            assert stages[0].deps == [] and stages[1].deps == []
            assert sorted(stage.which for stage in stages) == [0, 1]
            assert result_deps == stages

    def test_toggle_restores_state(self):
        assert pipelining_enabled()
        with disable_pipelining():
            assert not pipelining_enabled()
        assert pipelining_enabled()

    def test_scheduler_alias_exports(self):
        """Drift guard: repro.scheduler re-exports the implementation."""
        import repro.engine.scheduler as impl
        import repro.scheduler as alias

        for name in alias.__all__:
            assert getattr(alias, name) is getattr(impl, name), name
        for name in ("disable_pipelining", "enable_pipelining",
                     "pipelining_enabled"):
            assert name in alias.__all__


class TestExecutorPool:
    def test_map_tasks_preserves_order(self):
        pool = ExecutorPool(4)
        assert pool.map_tasks(lambda x: x * x, range(20)) \
            == [x * x for x in range(20)]
        pool.shutdown()

    def test_nested_map_tasks_fall_back_to_serial(self):
        pool = ExecutorPool(2)

        def nested(x):
            assert pool.in_worker()
            return sum(pool.map_tasks(lambda y: y + x, range(3)))

        expected = [sum(y + x for y in range(3)) for x in range(5)]
        assert pool.map_tasks(nested, range(5)) == expected
        pool.shutdown()
        assert not pool.started

    def test_pool_persists_across_jobs(self):
        with ClusterContext(num_executors=4, use_threads=True) as ctx:
            ctx.parallelize(range(32), 4).map(lambda x: x + 1).collect()
            pool = ctx.executor_pool
            assert pool.started
            inner = pool._executor
            ctx.parallelize([(i % 3, i) for i in range(30)], 4) \
               .reduce_by_key(lambda a, b: a + b).collect()
            assert ctx.executor_pool is pool
            assert pool._executor is inner

    def test_serial_context_never_starts_pool(self):
        with ClusterContext(num_executors=4, use_threads=False) as ctx:
            ctx.parallelize(range(32), 4).map(lambda x: x + 1).collect()
            assert not ctx.executor_pool.started

    def test_shutdown_then_reuse(self):
        ctx = ClusterContext(num_executors=2, use_threads=True)
        ctx.parallelize(range(8), 4).collect()
        ctx.shutdown()
        assert not ctx.executor_pool.started
        # the pool restarts lazily; the context stays usable
        assert ctx.parallelize(range(8), 4).collect() == list(range(8))
        ctx.shutdown()

    def test_shutdown_mid_job_raises_clear_error(self):
        """Regression: a pool shut down while a job is in flight used to
        silently re-create its executor on the next ``_ensure``. It must
        instead fail the running job with a clear ``RuntimeError`` and
        refuse to be reused."""
        pool = ExecutorPool(2)
        release = threading.Event()
        started = threading.Event()

        def task(i):
            started.set()
            release.wait(timeout=10)
            return i

        failure = {}

        def run_job():
            try:
                pool.map_tasks(task, range(16))
            except RuntimeError as exc:
                failure["error"] = exc

        job = threading.Thread(target=run_job)
        job.start()
        try:
            assert started.wait(timeout=10)
            pool.shutdown()
        finally:
            release.set()
        job.join(timeout=10)
        assert not job.is_alive()
        assert "shut down" in str(failure["error"])
        # the pool stays broken — no silent executor re-creation
        with pytest.raises(RuntimeError, match="cannot be reused"):
            pool.map_tasks(lambda x: x, range(4))


class TestConcurrencySafety:
    def test_cached_partition_computed_once_under_concurrency(self):
        with ClusterContext(num_executors=8, use_threads=True) as ctx:
            counts = {}
            guard = threading.Lock()

            def counting(index, part):
                with guard:
                    counts[index] = counts.get(index, 0) + 1
                return part

            base = ctx.parallelize(range(64), 8) \
                      .map_partitions_with_index(counting).cache()
            fan = base.union(base).union(base.union(base))
            assert fan.collect() == list(range(64)) * 4
            assert len(counts) == 8
            assert all(count == 1 for count in counts.values())

    def test_flaky_tasks_retry_under_threads(self):
        ctx = ClusterContext(num_executors=4, use_threads=True,
                             task_retries=2)
        attempts = {}
        guard = threading.Lock()

        def flaky(index, part):
            with guard:
                seen = attempts.get(index, 0)
                attempts[index] = seen + 1
            if seen == 0:
                raise IOError(f"transient failure in partition {index}")
            return part

        got = ctx.parallelize(range(40), 4) \
                 .map_partitions_with_index(flaky).collect()
        assert got == list(range(40))
        assert ctx.metrics.task_retries == 4
        ctx.shutdown()

    def test_exhausted_retries_surface_under_threads(self):
        ctx = ClusterContext(num_executors=4, use_threads=True,
                             task_retries=1)

        def boom(x):
            if x == 13:
                raise ValueError("deterministic failure")
            return x

        with pytest.raises(TaskFailure) as excinfo:
            ctx.parallelize(range(32), 4).map(boom).collect()
        assert isinstance(excinfo.value.cause, ValueError)
        ctx.shutdown()

    def test_concurrent_jobs_materialize_shared_shuffle_once(self):
        """Two driver threads racing through one shared shuffle stage
        compute each map partition exactly once — the per-stage
        materialize lock makes concurrent materialization idempotent."""
        with ClusterContext(num_executors=4, use_threads=True) as ctx:
            counts = {}
            guard = threading.Lock()

            def counting(index, part):
                with guard:
                    counts[index] = counts.get(index, 0) + 1
                return part

            shared = ctx.parallelize([(i % 5, i) for i in range(60)], 6) \
                        .map_partitions_with_index(counting) \
                        .reduce_by_key(lambda a, b: a + b)
            gate = threading.Barrier(2)
            results = {}
            errors = []

            def job(name, derive):
                try:
                    gate.wait(timeout=10)
                    results[name] = derive(shared).collect()
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [
                threading.Thread(
                    target=job,
                    args=("double", lambda r: r.map_values(
                        lambda v: v * 2))),
                threading.Thread(
                    target=job,
                    args=("keys", lambda r: r.map(lambda kv: kv[0]))),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert not errors
            expected = {}
            for i in range(60):
                expected[i % 5] = expected.get(i % 5, 0) + i
            assert sorted(results["double"]) \
                == sorted((k, v * 2) for k, v in expected.items())
            assert sorted(results["keys"]) == sorted(expected)
            assert len(counts) == 6
            assert all(count == 1 for count in counts.values()), counts

    def test_shutdown_mid_shuffle_stage_raises_clear_error(self):
        """Shutting the pool down while shuffle map tasks are queued
        surfaces one clear diagnostic, not a traceback storm of
        cancelled futures."""
        started = threading.Event()
        release = threading.Event()

        def blocking(kv):
            started.set()
            release.wait(timeout=10)
            return kv

        ctx = ClusterContext(num_executors=2, use_threads=True)
        failures = []

        def job():
            try:
                left = ctx.parallelize(
                    [(i % 4, i) for i in range(32)], 8).map(blocking)
                right = ctx.parallelize(
                    [(i % 4, -i) for i in range(32)], 8)
                left.join(right).collect()
            except BaseException as exc:  # noqa: BLE001
                failures.append(exc)

        thread = threading.Thread(target=job)
        thread.start()
        try:
            assert started.wait(timeout=10)
            ctx.executor_pool.shutdown()
        finally:
            release.set()
            thread.join(timeout=30)
            ctx.shutdown()
        assert len(failures) == 1
        assert isinstance(failures[0], RuntimeError)
        assert "shut down" in str(failures[0])


class TestMetricsAccounting:
    def test_take_records_single_job(self):
        ctx = ClusterContext(num_executors=4)
        rdd = ctx.parallelize(range(100), 10)
        before = ctx.metrics.snapshot()
        assert rdd.take(25) == list(range(25))
        delta = ctx.metrics.snapshot() - before
        assert delta.jobs_run == 1
        assert delta.stages_run == 1
        # 10 records per partition -> exactly 3 partitions probed
        assert delta.tasks_launched == 3

    def test_take_zero_runs_no_job(self):
        ctx = ClusterContext(num_executors=4)
        rdd = ctx.parallelize(range(10), 2)
        before = ctx.metrics.snapshot()
        assert rdd.take(0) == []
        assert (ctx.metrics.snapshot() - before).jobs_run == 0

    def test_stage_timings_and_utilization(self):
        ctx = ClusterContext(num_executors=4)
        with ctx.measure() as measurement:
            ctx.parallelize([(i % 5, i) for i in range(50)], 5) \
               .reduce_by_key(lambda a, b: a + b).collect()
        kinds = [timing.kind for timing in measurement.stage_timings]
        assert kinds == ["shuffle", "result"]
        assert measurement.stage_timings[0].num_tasks == 5
        # 5 shuffle map tasks + 5 result tasks
        assert len(measurement.task_times) == 10
        assert measurement.busy_task_s >= 0.0
        assert 0.0 <= measurement.utilization
        rendered = stage_breakdown(measurement.stage_timings,
                                   measurement.task_times)
        assert "shuffle" in rendered and "result" in rendered

    def test_checkpoint_records_stage_timing(self):
        ctx = ClusterContext(num_executors=4)
        ctx.parallelize(range(20), 4).map(lambda x: x * 2).checkpoint()
        kinds = [timing.kind for timing in ctx.metrics.stage_timings]
        assert "checkpoint" in kinds

    def test_task_time_histogram_buckets(self):
        ctx = ClusterContext(num_executors=2)
        ctx.parallelize(range(40), 4).map(lambda x: x).collect()
        histogram = ctx.metrics.task_time_histogram(bins=4)
        assert sum(count for _lo, _hi, count in histogram) == 4
