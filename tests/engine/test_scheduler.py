"""The stage scheduler's determinism contract and executor pool.

Serial (``use_threads=False``, the default), threaded, and
process-backend execution must return byte-identical results and
identical logical metrics — jobs, stages, tasks, shuffle records/bytes
— across every lineage shape the engine supports, including under
fault injection. Task *ordering* and wall-clock observations are
allowed to differ.
"""

import contextlib
import pickle
import threading

import pytest

from repro.engine import (
    ClusterContext,
    ExecutorPool,
    HashPartitioner,
    disable_columnar,
)
from repro.engine.explain import stage_breakdown
from repro.errors import TaskFailure

# counters that must not depend on the execution mode
LOGICAL_FIELDS = (
    "jobs_run",
    "stages_run",
    "tasks_launched",
    "shuffle_records",
    "shuffle_bytes",
    "shuffles_performed",
    "shuffle_batches",
    "shuffle_batch_records",
    "disk_read_bytes",
    "disk_write_bytes",
    "recomputations",
    "task_retries",
)


def _scenario_narrow_chain(ctx):
    return (
        ctx.parallelize(range(200), 8)
        .map(lambda x: x * 3)
        .filter(lambda x: x % 2 == 0)
        .collect()
    )


def _scenario_reduce_by_key(ctx):
    pairs = ctx.parallelize([(i % 7, i) for i in range(210)], 6)
    return pairs.reduce_by_key(lambda a, b: a + b).collect()


def _scenario_group_by_key(ctx):
    pairs = ctx.parallelize([(i % 5, i * i) for i in range(100)], 5)
    return pairs.group_by_key().collect()


def _scenario_cogroup(ctx):
    left = ctx.parallelize([(i % 4, i) for i in range(40)], 4)
    right = ctx.parallelize([(i % 4, -i) for i in range(28)], 4)
    return left.cogroup(right).collect()


def _scenario_join(ctx):
    left = ctx.parallelize([(i % 6, i) for i in range(60)], 4)
    right = ctx.parallelize([(i % 6, chr(65 + i % 6)) for i in range(12)], 3)
    return left.join(right).collect()


def _scenario_nested_shuffles(ctx):
    pairs = ctx.parallelize([(i % 9, i) for i in range(180)], 6)
    first = pairs.reduce_by_key(lambda a, b: a + b)
    rekeyed = first.map(lambda kv: (kv[0] % 3, kv[1]))
    return rekeyed.reduce_by_key(lambda a, b: a + b,
                                 partitioner=HashPartitioner(3)).collect()


def _scenario_narrowed_shuffle(ctx):
    part = HashPartitioner(4)
    pairs = ctx.parallelize([(i % 11, i) for i in range(110)], 4) \
               .partition_by(part)
    return pairs.reduce_by_key(lambda a, b: a + b,
                               partitioner=part).collect()


def _scenario_union_distinct(ctx):
    left = ctx.parallelize(range(50), 4)
    right = ctx.parallelize(range(25, 75), 4)
    return left.union(right).distinct().collect()


def _scenario_checkpoint(ctx):
    pairs = ctx.parallelize([(i % 4, i) for i in range(80)], 4)
    summed = pairs.reduce_by_key(lambda a, b: a + b).checkpoint()
    return summed.map_values(lambda v: v * 2).collect()


def _scenario_fail_partition(ctx):
    rdd = ctx.parallelize(range(48), 4).map(lambda x: x + 1).cache()
    first = rdd.collect()
    assert ctx.fail_partition(rdd, 2)
    return first + rdd.collect()


def _scenario_invalidate_shuffle(ctx):
    pairs = ctx.parallelize([(i % 3, i) for i in range(30)], 3)
    summed = pairs.reduce_by_key(lambda a, b: a + b)
    first = summed.collect()
    summed.invalidate_shuffle()
    return first + summed.collect()


SCENARIOS = {
    "narrow_chain": _scenario_narrow_chain,
    "reduce_by_key": _scenario_reduce_by_key,
    "group_by_key": _scenario_group_by_key,
    "cogroup": _scenario_cogroup,
    "join": _scenario_join,
    "nested_shuffles": _scenario_nested_shuffles,
    "narrowed_shuffle": _scenario_narrowed_shuffle,
    "union_distinct": _scenario_union_distinct,
    "checkpoint": _scenario_checkpoint,
    "fail_partition": _scenario_fail_partition,
    "invalidate_shuffle": _scenario_invalidate_shuffle,
}


def _run(use_threads, scenario, columnar=True, backend="thread"):
    toggle = contextlib.nullcontext() if columnar else disable_columnar()
    with toggle, \
            ClusterContext(num_executors=4, use_threads=use_threads,
                           backend=backend) as ctx:
        before = ctx.metrics.snapshot()
        result = scenario(ctx)
        delta = ctx.metrics.snapshot() - before
    return result, delta


class TestDeterminismContract:
    @pytest.mark.parametrize("columnar", [True, False],
                             ids=["columnar", "generic"])
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_serial_and_threaded_identical(self, name, columnar):
        scenario = SCENARIOS[name]
        serial_result, serial_delta = _run(False, scenario, columnar)
        threaded_result, threaded_delta = _run(True, scenario, columnar)
        # byte-identical results, ordering included
        assert pickle.dumps(serial_result) == pickle.dumps(threaded_result)
        for field_name in LOGICAL_FIELDS:
            assert getattr(serial_delta, field_name) \
                == getattr(threaded_delta, field_name), field_name

    @pytest.mark.parametrize("columnar", [True, False],
                             ids=["columnar", "generic"])
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_serial_and_process_identical(self, name, columnar):
        """The process backend holds the same contract as threading:
        forked workers, shared-memory block exchange and all, not one
        byte or logical counter may differ from serial execution."""
        scenario = SCENARIOS[name]
        serial_result, serial_delta = _run(False, scenario, columnar)
        process_result, process_delta = _run(False, scenario, columnar,
                                             backend="process")
        assert pickle.dumps(serial_result) == pickle.dumps(process_result)
        for field_name in LOGICAL_FIELDS:
            assert getattr(serial_delta, field_name) \
                == getattr(process_delta, field_name), field_name

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_columnar_matches_generic(self, name):
        """The packed shuffle data plane is an invisible optimization:
        switching it off must not change a single result byte."""
        scenario = SCENARIOS[name]
        columnar_result, _ = _run(False, scenario, columnar=True)
        generic_result, _ = _run(False, scenario, columnar=False)
        assert pickle.dumps(columnar_result) == pickle.dumps(generic_result)

    def test_narrowed_shuffle_moves_nothing_in_both_modes(self):
        for use_threads in (False, True):
            _result, delta = _run(use_threads, _scenario_narrowed_shuffle)
            # one shuffle from partition_by; the co-partitioned
            # reduce_by_key narrows and moves nothing extra
            assert delta.shuffles_performed == 1


class TestExecutorPool:
    def test_map_tasks_preserves_order(self):
        pool = ExecutorPool(4)
        assert pool.map_tasks(lambda x: x * x, range(20)) \
            == [x * x for x in range(20)]
        pool.shutdown()

    def test_nested_map_tasks_fall_back_to_serial(self):
        pool = ExecutorPool(2)

        def nested(x):
            assert pool.in_worker()
            return sum(pool.map_tasks(lambda y: y + x, range(3)))

        expected = [sum(y + x for y in range(3)) for x in range(5)]
        assert pool.map_tasks(nested, range(5)) == expected
        pool.shutdown()
        assert not pool.started

    def test_pool_persists_across_jobs(self):
        with ClusterContext(num_executors=4, use_threads=True) as ctx:
            ctx.parallelize(range(32), 4).map(lambda x: x + 1).collect()
            pool = ctx.executor_pool
            assert pool.started
            inner = pool._executor
            ctx.parallelize([(i % 3, i) for i in range(30)], 4) \
               .reduce_by_key(lambda a, b: a + b).collect()
            assert ctx.executor_pool is pool
            assert pool._executor is inner

    def test_serial_context_never_starts_pool(self):
        with ClusterContext(num_executors=4, use_threads=False) as ctx:
            ctx.parallelize(range(32), 4).map(lambda x: x + 1).collect()
            assert not ctx.executor_pool.started

    def test_shutdown_then_reuse(self):
        ctx = ClusterContext(num_executors=2, use_threads=True)
        ctx.parallelize(range(8), 4).collect()
        ctx.shutdown()
        assert not ctx.executor_pool.started
        # the pool restarts lazily; the context stays usable
        assert ctx.parallelize(range(8), 4).collect() == list(range(8))
        ctx.shutdown()

    def test_shutdown_mid_job_raises_clear_error(self):
        """Regression: a pool shut down while a job is in flight used to
        silently re-create its executor on the next ``_ensure``. It must
        instead fail the running job with a clear ``RuntimeError`` and
        refuse to be reused."""
        pool = ExecutorPool(2)
        release = threading.Event()
        started = threading.Event()

        def task(i):
            started.set()
            release.wait(timeout=10)
            return i

        failure = {}

        def run_job():
            try:
                pool.map_tasks(task, range(16))
            except RuntimeError as exc:
                failure["error"] = exc

        job = threading.Thread(target=run_job)
        job.start()
        try:
            assert started.wait(timeout=10)
            pool.shutdown()
        finally:
            release.set()
        job.join(timeout=10)
        assert not job.is_alive()
        assert "shut down" in str(failure["error"])
        # the pool stays broken — no silent executor re-creation
        with pytest.raises(RuntimeError, match="cannot be reused"):
            pool.map_tasks(lambda x: x, range(4))


class TestConcurrencySafety:
    def test_cached_partition_computed_once_under_concurrency(self):
        with ClusterContext(num_executors=8, use_threads=True) as ctx:
            counts = {}
            guard = threading.Lock()

            def counting(index, part):
                with guard:
                    counts[index] = counts.get(index, 0) + 1
                return part

            base = ctx.parallelize(range(64), 8) \
                      .map_partitions_with_index(counting).cache()
            fan = base.union(base).union(base.union(base))
            assert fan.collect() == list(range(64)) * 4
            assert len(counts) == 8
            assert all(count == 1 for count in counts.values())

    def test_flaky_tasks_retry_under_threads(self):
        ctx = ClusterContext(num_executors=4, use_threads=True,
                             task_retries=2)
        attempts = {}
        guard = threading.Lock()

        def flaky(index, part):
            with guard:
                seen = attempts.get(index, 0)
                attempts[index] = seen + 1
            if seen == 0:
                raise IOError(f"transient failure in partition {index}")
            return part

        got = ctx.parallelize(range(40), 4) \
                 .map_partitions_with_index(flaky).collect()
        assert got == list(range(40))
        assert ctx.metrics.task_retries == 4
        ctx.shutdown()

    def test_exhausted_retries_surface_under_threads(self):
        ctx = ClusterContext(num_executors=4, use_threads=True,
                             task_retries=1)

        def boom(x):
            if x == 13:
                raise ValueError("deterministic failure")
            return x

        with pytest.raises(TaskFailure) as excinfo:
            ctx.parallelize(range(32), 4).map(boom).collect()
        assert isinstance(excinfo.value.cause, ValueError)
        ctx.shutdown()


class TestMetricsAccounting:
    def test_take_records_single_job(self):
        ctx = ClusterContext(num_executors=4)
        rdd = ctx.parallelize(range(100), 10)
        before = ctx.metrics.snapshot()
        assert rdd.take(25) == list(range(25))
        delta = ctx.metrics.snapshot() - before
        assert delta.jobs_run == 1
        assert delta.stages_run == 1
        # 10 records per partition -> exactly 3 partitions probed
        assert delta.tasks_launched == 3

    def test_take_zero_runs_no_job(self):
        ctx = ClusterContext(num_executors=4)
        rdd = ctx.parallelize(range(10), 2)
        before = ctx.metrics.snapshot()
        assert rdd.take(0) == []
        assert (ctx.metrics.snapshot() - before).jobs_run == 0

    def test_stage_timings_and_utilization(self):
        ctx = ClusterContext(num_executors=4)
        with ctx.measure() as measurement:
            ctx.parallelize([(i % 5, i) for i in range(50)], 5) \
               .reduce_by_key(lambda a, b: a + b).collect()
        kinds = [timing.kind for timing in measurement.stage_timings]
        assert kinds == ["shuffle", "result"]
        assert measurement.stage_timings[0].num_tasks == 5
        # 5 shuffle map tasks + 5 result tasks
        assert len(measurement.task_times) == 10
        assert measurement.busy_task_s >= 0.0
        assert 0.0 <= measurement.utilization
        rendered = stage_breakdown(measurement.stage_timings,
                                   measurement.task_times)
        assert "shuffle" in rendered and "result" in rendered

    def test_checkpoint_records_stage_timing(self):
        ctx = ClusterContext(num_executors=4)
        ctx.parallelize(range(20), 4).map(lambda x: x * 2).checkpoint()
        kinds = [timing.kind for timing in ctx.metrics.stage_timings]
        assert "checkpoint" in kinds

    def test_task_time_histogram_buckets(self):
        ctx = ClusterContext(num_executors=2)
        ctx.parallelize(range(40), 4).map(lambda x: x).collect()
        histogram = ctx.metrics.task_time_histogram(bins=4)
        assert sum(count for _lo, _hi, count in histogram) == 4
