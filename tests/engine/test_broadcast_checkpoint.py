"""Tests for broadcast variables, counters, and checkpointing."""

import numpy as np
import pytest

from repro.engine import ClusterContext
from repro.engine.lineage import lineage_depth
from repro.errors import EngineError


@pytest.fixture()
def ctx():
    return ClusterContext(num_executors=4, default_parallelism=4)


class TestBroadcast:
    def test_value_accessible_in_tasks(self, ctx):
        lookup = ctx.broadcast({"a": 1, "b": 2})
        rdd = ctx.parallelize(["a", "b", "a"], 2)
        assert rdd.map(lambda k: lookup.value[k]).collect() == [1, 2, 1]

    def test_network_cost_metered(self, ctx):
        payload = np.zeros(100_000)  # 800 KB
        before = ctx.metrics.snapshot()
        ctx.broadcast(payload)
        delta = ctx.metrics.snapshot() - before
        assert delta.broadcast_bytes == payload.nbytes * 4

    def test_broadcast_counts_toward_modeled_network(self, ctx):
        with ctx.measure() as measurement:
            ctx.broadcast(np.zeros(1_000_000))
        assert measurement.report.network_s > 0

    def test_destroy(self, ctx):
        b = ctx.broadcast([1, 2, 3])
        b.destroy()
        with pytest.raises(EngineError):
            _ = b.value

    def test_nbytes(self, ctx):
        b = ctx.broadcast(np.zeros(10))
        assert b.nbytes == 80


class TestCounter:
    def test_tasks_accumulate(self, ctx):
        invalid_cells = ctx.counter(name="invalid")
        rdd = ctx.parallelize(range(100), 4)

        def check(x):
            if x % 3 == 0:
                invalid_cells.add(1)
            return x

        rdd.map(check).collect()
        assert invalid_cells.value == 34

    def test_reset(self, ctx):
        c = ctx.counter(10)
        c.add(5)
        assert c.value == 15
        c.reset()
        assert c.value == 0

    def test_float_counter(self, ctx):
        c = ctx.counter(0.0)
        ctx.parallelize([0.5, 1.5], 2).foreach(c.add)
        assert c.value == 2.0


class TestCheckpoint:
    def test_checkpoint_truncates_lineage(self, ctx):
        rdd = ctx.parallelize(range(10), 2)
        for _ in range(5):
            rdd = rdd.map(lambda x: x + 1)
        assert lineage_depth(rdd) == 6
        rdd.checkpoint()
        assert lineage_depth(rdd) == 1
        assert rdd.is_checkpointed
        assert "checkpoint" in rdd.lineage_string()
        assert rdd.lineage()["parents"] == []

    def test_checkpoint_preserves_data(self, ctx):
        rdd = ctx.parallelize(range(20), 4).map(lambda x: x * 2)
        expected = rdd.collect()
        rdd.checkpoint()
        assert rdd.collect() == expected

    def test_reads_come_from_checkpoint_not_parents(self, ctx):
        calls = []
        rdd = ctx.parallelize(range(8), 2).map(
            lambda x: calls.append(x) or x)
        rdd.checkpoint()
        call_count = len(calls)
        rdd.collect()
        rdd.collect()
        assert len(calls) == call_count  # parents never re-ran

    def test_checkpoint_write_metered_as_disk(self, ctx):
        rdd = ctx.parallelize([bytes(1000)] * 4, 2)
        before = ctx.metrics.snapshot()
        rdd.checkpoint()
        delta = ctx.metrics.snapshot() - before
        assert delta.disk_write_bytes >= 4000
        before = ctx.metrics.snapshot()
        rdd.collect()
        delta = ctx.metrics.snapshot() - before
        assert delta.disk_read_bytes >= 4000

    def test_checkpoint_idempotent(self, ctx):
        rdd = ctx.parallelize(range(4), 2)
        rdd.checkpoint()
        before = ctx.metrics.snapshot()
        rdd.checkpoint()
        delta = ctx.metrics.snapshot() - before
        assert delta.disk_write_bytes == 0

    def test_iterative_job_with_periodic_checkpoints(self, ctx):
        """The GraphX-style fix: checkpoint every k iterations."""
        ranks = ctx.parallelize([(v, 1.0) for v in range(10)], 2)
        for step in range(1, 10):
            ranks = ranks.map_values(lambda r: r * 0.9 + 0.1)
            if step % 3 == 0:
                ranks.checkpoint()
        assert lineage_depth(ranks) <= 4
        values = dict(ranks.collect())
        expected = 1.0
        for _ in range(9):
            expected = expected * 0.9 + 0.1
        assert values[0] == pytest.approx(expected)
