"""Tests for the stage-plan explainer."""

import pytest

from repro.engine import ClusterContext, HashPartitioner
from repro.engine.explain import (
    count_stages,
    explain,
    fused_pipelines,
    modeled_schedule,
    stage_plan,
)


@pytest.fixture()
def ctx():
    return ClusterContext(num_executors=4, default_parallelism=4)


class TestStagePlan:
    def test_narrow_pipeline_is_one_stage(self, ctx):
        rdd = ctx.parallelize(range(10), 2) \
                 .map(lambda x: x + 1) \
                 .filter(lambda x: x % 2 == 0) \
                 .map(lambda x: x * 3)
        assert count_stages(rdd) == 1
        plan = stage_plan(rdd)
        assert len(plan[0].rdds) == 4

    def test_shuffle_starts_a_stage(self, ctx):
        rdd = ctx.parallelize([(i % 3, i) for i in range(12)], 3) \
                 .reduce_by_key(lambda a, b: a + b) \
                 .map_values(lambda v: v * 2)
        plan = stage_plan(rdd)
        assert len(plan) == 2
        result_stage = plan[-1]
        assert len(result_stage.parent_stages) == 1

    def test_join_has_two_parent_stages(self, ctx):
        left = ctx.parallelize([(1, "a")], 1).map(lambda kv: kv)
        right = ctx.parallelize([(1, "b")], 1).map(lambda kv: kv)
        joined = left.join(right)
        plan = stage_plan(joined)
        assert len(plan) == 3
        assert len(plan[-1].parent_stages) == 2

    def test_copartitioned_join_adds_no_stage(self, ctx):
        part = HashPartitioner(4)
        left = ctx.parallelize([(i, i) for i in range(8)], 4) \
                  .partition_by(part)
        right = ctx.parallelize([(i, -i) for i in range(8)], 4) \
                   .partition_by(part)
        joined = left.join(right, partitioner=part)
        # the two placement pipelines merge into the join's own stage:
        # lineage still shows their shuffles, but the join adds none
        assert count_stages(joined) \
            == count_stages(left) + count_stages(right) - 1
        result_stage = stage_plan(joined)[-1]
        names = {node.name for node in result_stage.rdds}
        assert "cogroup" in names and "partition_by" in names

    def test_checkpoint_truncates_plan(self, ctx):
        rdd = ctx.parallelize([(i % 2, i) for i in range(8)], 2) \
                 .reduce_by_key(lambda a, b: a + b)
        deeper = rdd.map_values(lambda v: v + 1)
        assert count_stages(deeper) == 2
        rdd.checkpoint()
        assert count_stages(deeper) == 1

    def test_stage_ids_are_execution_ordered(self, ctx):
        rdd = ctx.parallelize([(1, 1)], 1) \
                 .reduce_by_key(lambda a, b: a + b) \
                 .map(lambda kv: (kv[1], kv[0])) \
                 .reduce_by_key(lambda a, b: a + b)
        plan = stage_plan(rdd)
        assert [stage.stage_id for stage in plan] == [0, 1, 2]
        # each stage depends only on earlier stages
        for stage in plan:
            for parent in stage.parent_stages:
                assert parent.stage_id < stage.stage_id


class TestExplainText:
    def test_mentions_ops_and_shuffles(self, ctx):
        rdd = ctx.parallelize([(1, 1)], 1) \
                 .reduce_by_key(lambda a, b: a + b)
        text = explain(rdd)
        assert "Stage 0" in text
        assert "Stage 1" in text
        assert "shuffle from stage 0" in text
        assert "parallelize" in text

    def test_marks_cached(self, ctx):
        rdd = ctx.parallelize(range(4), 2).map(lambda x: x).cache()
        assert "[cached]" in explain(rdd)

    def test_marks_checkpoint(self, ctx):
        rdd = ctx.parallelize(range(4), 2).map(lambda x: x)
        rdd.checkpoint()
        assert "[checkpoint]" in explain(rdd)

    def test_reports_modeled_schedule(self, ctx):
        rdd = ctx.parallelize([(1, 1)], 1) \
                 .reduce_by_key(lambda a, b: a + b)
        assert "Modeled schedule:" in explain(rdd)
        assert "critical path" in explain(rdd)


class TestModeledSchedule:
    def test_chain_has_no_overlap(self, ctx):
        rdd = ctx.parallelize([(1, 1)], 1) \
                 .reduce_by_key(lambda a, b: a + b) \
                 .map(lambda kv: (kv[1], kv[0])) \
                 .reduce_by_key(lambda a, b: a + b)
        schedule = modeled_schedule(rdd)
        assert schedule["pipelined_s"] == pytest.approx(
            schedule["serial_s"])
        assert schedule["overlap"] == pytest.approx(1.0)

    def test_join_diamond_overlaps(self, ctx):
        left = ctx.parallelize([(1, "a")], 2).map(lambda kv: kv)
        right = ctx.parallelize([(1, "b")], 2).map(lambda kv: kv)
        schedule = modeled_schedule(left.join(right))
        # the two independent shuffle sides overlap on the modeled
        # cluster, so the critical path is strictly shorter
        assert schedule["pipelined_s"] < schedule["serial_s"]
        assert schedule["overlap"] > 1.0

    def test_mixed_cached_checkpointed_fused_plan(self, ctx):
        """One plan mixing all three markers the explainer knows."""
        import numpy as np

        from repro.core import ArrayRDD

        rng = np.random.default_rng(3)
        arr = ArrayRDD.from_numpy(ctx, rng.random((32, 32)), (16, 16))
        fused = (arr * 2.0).map_values(lambda a: a + 1.0).cache()
        fused.materialize()                  # compiles fused[...] + caches
        base = fused.rdd
        base.checkpoint()
        deeper = base.map(lambda kv: kv)

        text = explain(deeper)
        assert "[cached]" in text
        assert "[checkpoint]" in text
        assert "fused[scalar_mul→map]" in text

        # checkpoint truncated the plan to a single stage
        assert count_stages(deeper) == 1

    def test_matmul_local_join_has_no_input_shuffle(self, ctx):
        import numpy as np

        from repro.matrix import SpangleMatrix
        from repro.matrix.multiply import prepare_local

        a = np.random.default_rng(0).random((32, 32))
        ma = SpangleMatrix.from_numpy(ctx, a, (16, 16))
        mb = SpangleMatrix.from_numpy(ctx, a, (16, 16))

        def stage_of(plan, op_name):
            for stage in plan:
                if any(node.name == op_name for node in stage.rdds):
                    return stage
            raise AssertionError(f"no stage contains {op_name}")

        # default: the contraction cogroup sits below two shuffles
        default_plan = stage_plan(ma.multiply(mb).array.rdd)
        assert len(stage_of(default_plan, "cogroup").parent_stages) == 2

        # local join: the fused zip stage has no shuffle parents at all
        la, lb = prepare_local(ma, mb)
        local_plan = stage_plan(
            la.multiply(lb, local_join=True).array.rdd)
        zip_stage = stage_of(local_plan, "zip_partitions")
        assert all(
            "zip_partitions" not in
            {node.name for node in parent.rdds}
            for parent in zip_stage.parent_stages)
        # its only inputs are the one-off placement shuffles, already
        # merged into the same stage as the zip itself
        names = {node.name for node in zip_stage.rdds}
        assert "partition_by" in names


class TestFusedPipelines:
    def test_no_fusion_means_no_labels(self, ctx):
        rdd = ctx.parallelize(range(8), 2).map(lambda x: x + 1)
        assert fused_pipelines(rdd) == []

    def test_fused_chain_is_listed(self, ctx):
        import numpy as np

        from repro.core import ArrayRDD

        rng = np.random.default_rng(3)
        arr = ArrayRDD.from_numpy(ctx, rng.random((32, 32)), (16, 16))
        chain = ((arr * 2.0)
                 .filter(lambda a: a > 0.5)
                 .map_values(lambda a: a - 1.0))
        labels = fused_pipelines(chain.rdd)
        assert labels == ["fused[scalar_mul→filter→map]"]

    def test_pipelines_across_a_shuffle_list_in_stage_order(self, ctx):
        import numpy as np

        from repro.core import ArrayRDD

        rng = np.random.default_rng(3)
        arr = ArrayRDD.from_numpy(ctx, rng.random((32, 32)), (16, 16))
        first = (arr * 2.0).map_values(lambda a: a + 1.0)
        # aggregate_by shuffles; the downstream side compiles its own
        # fused pipeline over the aggregated chunks
        regrouped = first.aggregate_by((0,), "sum")
        second = (regrouped * 3.0).map_values(lambda a: a - 1.0)
        labels = fused_pipelines(second.rdd)
        assert labels == ["fused[scalar_mul→map]",
                          "fused[scalar_mul→map]"]
        # a cached mid-point keeps both pipelines in the plan
        second.cache().materialize()
        assert "[cached]" in explain(second.rdd)
