"""Tests for take_ordered/top/zip."""

import pytest

from repro.engine import ClusterContext
from repro.errors import EngineError, TaskFailure


@pytest.fixture()
def ctx():
    return ClusterContext(num_executors=4, default_parallelism=4)


class TestOrdering:
    def test_take_ordered(self, ctx):
        data = [9, 1, 7, 3, 8, 2, 6, 4, 5]
        rdd = ctx.parallelize(data, 3)
        assert rdd.take_ordered(4) == [1, 2, 3, 4]

    def test_take_ordered_with_key(self, ctx):
        rdd = ctx.parallelize([(1, "b"), (3, "a"), (2, "c")], 2)
        assert rdd.take_ordered(2, key=lambda kv: kv[1]) \
            == [(3, "a"), (1, "b")]

    def test_top(self, ctx):
        rdd = ctx.parallelize(range(100), 5)
        assert rdd.top(3) == [99, 98, 97]

    def test_top_with_key(self, ctx):
        rdd = ctx.parallelize(["aa", "b", "cccc", "ddd"], 2)
        assert rdd.top(2, key=len) == ["cccc", "ddd"]

    def test_n_larger_than_data(self, ctx):
        rdd = ctx.parallelize([2, 1], 2)
        assert rdd.take_ordered(10) == [1, 2]
        assert rdd.top(10) == [2, 1]

    def test_empty(self, ctx):
        assert ctx.parallelize([], 2).take_ordered(3) == []
        assert ctx.parallelize([], 2).top(3) == []


class TestZip:
    def test_positional_pairs(self, ctx):
        a = ctx.parallelize([1, 2, 3, 4], 2)
        b = ctx.parallelize("wxyz", 2)
        assert a.zip(b).collect() == [(1, "w"), (2, "x"), (3, "y"),
                                      (4, "z")]

    def test_partition_count_mismatch(self, ctx):
        a = ctx.parallelize(range(4), 2)
        b = ctx.parallelize(range(4), 4)
        with pytest.raises(EngineError):
            a.zip(b)

    def test_partition_size_mismatch(self, ctx):
        a = ctx.parallelize(range(4), 2)
        b = ctx.parallelize(range(6), 2)
        with pytest.raises(TaskFailure) as excinfo:
            a.zip(b).collect()
        assert isinstance(excinfo.value.cause, EngineError)

    def test_zip_with_self(self, ctx):
        a = ctx.parallelize(range(6), 3)
        assert a.zip(a).collect() == [(i, i) for i in range(6)]
