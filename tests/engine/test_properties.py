"""Property-based tests: RDD operations agree with plain-Python
semantics regardless of data and partitioning."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import ClusterContext, HashPartitioner


datasets = st.lists(st.integers(-50, 50), min_size=0, max_size=60)
pair_datasets = st.lists(
    st.tuples(st.integers(0, 9), st.integers(-20, 20)),
    min_size=0, max_size=60)
partition_counts = st.integers(1, 7)


def make_ctx():
    return ClusterContext(num_executors=2, default_parallelism=2)


@settings(max_examples=40, deadline=None)
@given(data=datasets, parts=partition_counts)
def test_collect_preserves_order(data, parts):
    ctx = make_ctx()
    assert ctx.parallelize(data, parts).collect() == data


@settings(max_examples=40, deadline=None)
@given(data=datasets, parts=partition_counts)
def test_map_filter_compose(data, parts):
    ctx = make_ctx()
    got = ctx.parallelize(data, parts) \
             .map(lambda x: x * 2) \
             .filter(lambda x: x > 0) \
             .collect()
    assert got == [x * 2 for x in data if x * 2 > 0]


@settings(max_examples=40, deadline=None)
@given(data=datasets, parts=partition_counts)
def test_count_sum_match(data, parts):
    ctx = make_ctx()
    rdd = ctx.parallelize(data, parts)
    assert rdd.count() == len(data)
    assert rdd.sum() == sum(data)


@settings(max_examples=40, deadline=None)
@given(data=pair_datasets, parts=partition_counts)
def test_reduce_by_key_matches_counter(data, parts):
    ctx = make_ctx()
    got = dict(ctx.parallelize(data, parts)
               .reduce_by_key(lambda a, b: a + b).collect())
    expected = {}
    for key, value in data:
        expected[key] = expected.get(key, 0) + value
    assert got == expected


@settings(max_examples=40, deadline=None)
@given(data=pair_datasets, parts=partition_counts,
       target=st.integers(1, 6))
def test_partition_by_is_content_preserving(data, parts, target):
    ctx = make_ctx()
    placed = ctx.parallelize(data, parts) \
                .partition_by(HashPartitioner(target))
    assert Counter(placed.collect()) == Counter(data)
    for index, records in enumerate(placed.glom().collect()):
        for key, _value in records:
            assert hash(key) % target == index


@settings(max_examples=40, deadline=None)
@given(left=pair_datasets, right=pair_datasets)
def test_join_matches_nested_loop(left, right):
    ctx = make_ctx()
    got = Counter(ctx.parallelize(left, 3)
                  .join(ctx.parallelize(right, 2)).collect())
    expected = Counter(
        (lk, (lv, rv))
        for lk, lv in left for rk, rv in right if lk == rk)
    assert got == expected


@settings(max_examples=40, deadline=None)
@given(left=pair_datasets, right=pair_datasets)
def test_full_outer_join_covers_all_keys(left, right):
    ctx = make_ctx()
    got = ctx.parallelize(left, 2) \
             .full_outer_join(ctx.parallelize(right, 3)).collect()
    got_keys = {k for k, _v in got}
    assert got_keys == {k for k, _v in left} | {k for k, _v in right}
    # every left value appears with some partner
    left_seen = Counter(
        (k, pair[0]) for k, pair in got if pair[0] is not None)
    for key, value in left:
        assert left_seen[(key, value)] >= 1


@settings(max_examples=40, deadline=None)
@given(data=datasets, parts=partition_counts)
def test_distinct_matches_set(data, parts):
    ctx = make_ctx()
    got = ctx.parallelize(data, parts).distinct().collect()
    assert sorted(got) == sorted(set(data))


@settings(max_examples=40, deadline=None)
@given(data=pair_datasets)
def test_sort_by_key_sorts(data):
    ctx = make_ctx()
    got = ctx.parallelize(data, 3).sort_by_key().keys().collect()
    assert got == sorted(k for k, _v in data)


@settings(max_examples=30, deadline=None)
@given(data=datasets, parts=partition_counts)
def test_cache_changes_nothing(data, parts):
    ctx = make_ctx()
    rdd = ctx.parallelize(data, parts).map(lambda x: x + 1).cache()
    first = rdd.collect()
    second = rdd.collect()
    assert first == second == [x + 1 for x in data]


@settings(max_examples=30, deadline=None)
@given(data=datasets, parts=partition_counts,
       fraction=st.floats(0.0, 1.0))
def test_sample_is_subsequence(data, parts, fraction):
    ctx = make_ctx()
    sampled = ctx.parallelize(data, parts).sample(fraction, seed=1) \
                 .collect()
    # sampling preserves order and multiplicity bounds
    it = iter(data)
    for item in sampled:
        for candidate in it:
            if candidate == item:
                break
        else:
            pytest.fail("sample emitted an element out of order")
