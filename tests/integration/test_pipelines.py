"""End-to-end pipelines across subsystems.

Each test exercises a realistic multi-module flow: ingest → operators →
export; ML over generated data; fault injection mid-pipeline; cost
accounting across a whole workload.
"""

import numpy as np
import pytest

from repro.core import ArrayRDD, SpangleDataset
from repro.core.accumulate import accumulate_axis
from repro.core.reshape import rechunk
from repro.core.stats import describe
from repro.core.updates import merge_cells
from repro.core.windows import regrid
from repro.data import chl_like, scaled_graph, sdss_like
from repro.data.raster import sdss_stack
from repro.engine import ClusterContext
from repro.engine.lineage import FaultInjector
from repro.io.export import array_rdd_to_snf
from repro.io.snf import load_snf_as_dataset, read_snf
from repro.ml import BitmaskGraph, pagerank
from repro.ml.components import connected_components
from repro.queries import SpangleRasterQueries, load_spangle_dataset


@pytest.fixture()
def ctx():
    return ClusterContext(num_executors=4, default_parallelism=4)


class TestRasterPipeline:
    def test_snf_roundtrip_through_analysis(self, ctx, tmp_path):
        """Generate → SNF → load → filter → regrid → export → reload."""
        values, valid = chl_like((60, 80, 2), seed=1)
        from repro.io import write_snf

        source = tmp_path / "chl.snf"
        write_snf(source, {"lat": 60, "lon": 80, "time": 2},
                  {"chl": values}, valid)
        dataset = load_snf_as_dataset(ctx, source, (20, 20, 1))
        blooms = dataset.filter("chl", lambda xs: xs > 1.0)
        bloom_array = blooms.evaluate("chl")
        coarse = regrid(bloom_array, (10, 10, 1))
        out = tmp_path / "coarse.snf"
        array_rdd_to_snf(coarse, out)
        _dims, attrs = read_snf(out)
        exported_values, exported_valid = attrs[coarse.meta.attribute]
        assert exported_valid.sum() == coarse.count_valid()
        # spot check one window against numpy
        mask = valid & (np.where(valid, values, 0) > 1.0)
        window = values[:10, :10, 0][mask[:10, :10, 0]]
        if window.size:
            assert exported_values[0, 0, 0] == pytest.approx(
                window.mean())

    def test_query_results_stable_under_rechunk(self, ctx):
        bands = sdss_like(4, shape=(64, 64), objects_per_image=40,
                          seed=2)
        dataset = load_spangle_dataset(ctx, bands, (16, 16, 1))
        queries = SpangleRasterQueries(dataset)
        baseline = queries.q1_aggregation("u")
        rechunked = {
            name: rechunk(arr, (32, 32, 2))
            for name, arr in dataset.attributes.items()
        }
        queries2 = SpangleRasterQueries(SpangleDataset(rechunked))
        assert queries2.q1_aggregation("u") == pytest.approx(baseline)

    def test_update_then_requery(self, ctx):
        bands = sdss_like(2, shape=(32, 32), objects_per_image=20,
                          seed=3)
        values, valid = sdss_stack(bands["u"])
        arr = ArrayRDD.from_numpy(ctx, values, (16, 16, 1),
                                  valid=valid)
        before_count = arr.count_valid()
        empties = np.argwhere(~valid)[:10]
        updates = [(tuple(map(int, c)), 5.0) for c in empties]
        updated = merge_cells(arr, updates)
        assert updated.count_valid() == before_count + 10
        summary = describe(updated)
        assert summary.count == before_count + 10

    def test_accumulate_composes_with_subarray(self, ctx):
        rng = np.random.default_rng(4)
        values = rng.random((32, 32))
        arr = ArrayRDD.from_numpy(ctx, values, (8, 8))
        running = accumulate_axis(arr, 1, "sum")
        window = running.subarray((0, 31), (31, 31))
        got, got_valid = window.collect_dense(0.0)
        # the last column of a row-prefix-sum is the row total
        assert np.allclose(got[:, 31], values.sum(axis=1))


class TestMLPipeline:
    def test_graph_analysis_stack(self, ctx):
        edges, n = scaled_graph("enron", seed=0)
        graph = BitmaskGraph.from_edges(ctx, edges, n,
                                        block_size=512).cache()
        ranks = pagerank(graph, max_iterations=10)
        components = connected_components(graph, max_iterations=50)
        # the highest-ranked vertex must live in a large component
        top_vertex = ranks.top_k(1)[0][0]
        top_label = components.labels[top_vertex]
        assert components.sizes[int(top_label)] > 10

    def test_dataset_to_model(self, ctx, tmp_path):
        """Multi-band dataset → derived attribute → training data."""
        from repro.ml import DistributedSamples, LogisticRegression

        bands = sdss_like(4, shape=(64, 64), objects_per_image=60,
                          seed=5)
        dataset = load_spangle_dataset(ctx, bands, (16, 16, 1))
        u_values, u_valid = dataset.evaluate("u").collect_dense(0.0)
        z_values, _ = dataset.evaluate("z").collect_dense(0.0)
        cells = np.argwhere(u_valid)
        features = np.stack([
            u_values[u_valid], z_values[u_valid],
            cells[:, 0] / 64.0, cells[:, 1] / 64.0,
        ], axis=1)
        labels = (z_values[u_valid] > np.median(z_values[u_valid])) \
            .astype(float)
        rows, cols = np.nonzero(features)
        samples = DistributedSamples.from_coo(
            ctx, rows, cols, features[rows, cols], labels, 4,
            chunk_rows=128)
        model = LogisticRegression(max_iterations=100,
                                   chunks_per_step=2)
        model.fit(samples)
        assert model.accuracy(samples) > 0.8


class TestFaultToleranceAcrossStack:
    def test_query_survives_block_loss(self, ctx):
        bands = sdss_like(4, shape=(64, 64), objects_per_image=40,
                          seed=6)
        dataset = load_spangle_dataset(ctx, bands, (16, 16, 1))
        u = dataset.attribute("u").materialize()
        expected = u.aggregate("sum")
        injector = FaultInjector(ctx, seed=1)
        assert injector.strike(u.rdd, kill_fraction=0.8) > 0
        assert u.aggregate("sum") == pytest.approx(expected)

    def test_pagerank_survives_block_loss(self, ctx):
        edges, n = scaled_graph("enron", seed=1)
        graph = BitmaskGraph.from_edges(ctx, edges, n,
                                        block_size=512).cache()
        expected = pagerank(graph, max_iterations=5).ranks
        injector = FaultInjector(ctx, seed=2)
        injector.strike(graph.rdd, kill_fraction=0.9)
        recovered = pagerank(graph, max_iterations=5).ranks
        assert np.allclose(recovered, expected)


class TestCostAccounting:
    def test_whole_workload_report(self, ctx):
        values, valid = chl_like((60, 80, 1), seed=7)
        with ctx.measure() as measurement:
            arr = ArrayRDD.from_numpy(ctx, values, (20, 20, 1),
                                      valid=valid)
            arr.filter(lambda xs: xs > 1.0).aggregate("avg")
            regrid(arr, (10, 10, 1)).count_valid()
        report = measurement.report
        assert report.wall_clock_s > 0
        assert report.scheduling_s > 0
        assert report.modeled_s >= report.wall_clock_s
        assert measurement.delta.jobs_run >= 2
