"""Tests for matrix factories and reductions."""

import numpy as np
import pytest

from repro.engine import ClusterContext
from repro.errors import ShapeMismatchError
from repro.matrix import SpangleMatrix, SpangleVector
from repro.matrix.creation import (
    col_sums,
    diagonal,
    frobenius_norm,
    from_diagonal,
    identity,
    random_sparse,
    row_sums,
    trace,
)


@pytest.fixture()
def ctx():
    return ClusterContext(num_executors=4, default_parallelism=4)


class TestFactories:
    def test_identity(self, ctx):
        eye = identity(ctx, 20, block=8)
        assert np.allclose(eye.to_numpy(), np.eye(20))
        assert eye.nnz() == 20

    def test_identity_is_multiplicative_unit(self, ctx):
        rng = np.random.default_rng(0)
        a = rng.random((20, 20))
        a[a < 0.5] = 0
        m = SpangleMatrix.from_numpy(ctx, a, (8, 8))
        eye = identity(ctx, 20, block=8)
        assert np.allclose(m.multiply(eye).to_numpy(), a)
        assert np.allclose(eye.multiply(m).to_numpy(), a)

    def test_from_diagonal(self, ctx):
        diag = np.array([1.0, 0.0, 3.0, -2.0])
        m = from_diagonal(ctx, diag, block=2)
        assert np.allclose(m.to_numpy(), np.diag(diag))
        assert m.nnz() == 3  # the explicit zero is not stored

    def test_random_sparse(self, ctx):
        m = random_sparse(ctx, (100, 80), density=0.05, seed=1)
        assert m.shape == (100, 80)
        assert m.nnz() == int(100 * 80 * 0.05)
        assert (m.array.rdd.map(
            lambda kv: float(kv[1].values().min())).min()) > 0


class TestReductions:
    def _matrix(self, ctx, seed=2, shape=(30, 22)):
        rng = np.random.default_rng(seed)
        dense = rng.random(shape)
        dense[rng.random(shape) > 0.3] = 0
        return SpangleMatrix.from_numpy(ctx, dense, (8, 8)), dense

    def test_row_sums(self, ctx):
        m, dense = self._matrix(ctx)
        sums = row_sums(m)
        assert sums.orientation == "col"
        assert np.allclose(sums.data, dense.sum(axis=1))

    def test_col_sums(self, ctx):
        m, dense = self._matrix(ctx, seed=3)
        sums = col_sums(m)
        assert sums.orientation == "row"
        assert np.allclose(sums.data, dense.sum(axis=0))

    def test_diagonal_and_trace(self, ctx):
        m, dense = self._matrix(ctx, seed=4, shape=(25, 25))
        assert np.allclose(diagonal(m), np.diag(dense))
        assert trace(m) == pytest.approx(np.trace(dense))

    def test_diagonal_requires_square(self, ctx):
        m, _dense = self._matrix(ctx)
        with pytest.raises(ShapeMismatchError):
            diagonal(m)

    def test_frobenius_norm(self, ctx):
        m, dense = self._matrix(ctx, seed=5)
        assert frobenius_norm(m) == pytest.approx(
            np.linalg.norm(dense, "fro"))

    def test_row_sums_consistent_with_matvec(self, ctx):
        m, dense = self._matrix(ctx, seed=6)
        ones = SpangleVector(np.ones(m.shape[1]), "col")
        assert np.allclose(row_sums(m).data, m.dot_vector(ones).data)
