"""Tests for SpangleVector (opt2 transpose) and the offset-array encoding."""

import numpy as np
import pytest

from repro.core.chunk import Chunk
from repro.engine import ClusterContext
from repro.errors import ArrayError, ShapeMismatchError
from repro.matrix import OffsetArrayChunk, SpangleVector, encode_static
from repro.matrix.offsets import (
    bitmask_bytes,
    offset_array_bytes,
    should_use_offsets,
)


@pytest.fixture()
def ctx():
    return ClusterContext(num_executors=2, default_parallelism=2)


class TestSpangleVector:
    def test_shapes(self):
        v = SpangleVector([1.0, 2.0, 3.0])
        assert v.orientation == "col"
        assert v.shape == (3, 1)
        assert v.T.shape == (1, 3)

    def test_bad_orientation(self):
        with pytest.raises(ShapeMismatchError):
            SpangleVector([1.0], "diagonal")

    def test_transpose_is_metadata_only(self):
        v = SpangleVector(np.arange(5.0))
        t = v.transpose()
        assert t.data is v.data  # zero copy: the whole point of opt2
        assert t.orientation == "row"
        assert t.T.orientation == "col"

    def test_transpose_physical_matches(self, ctx):
        v = SpangleVector(np.arange(100.0), "col")
        physical = v.transpose_physical(ctx, chunk=16)
        assert physical.orientation == "row"
        assert np.allclose(physical.data, v.data)

    def test_transpose_physical_row_to_col(self, ctx):
        v = SpangleVector(np.arange(10.0), "row")
        assert v.transpose_physical(ctx).orientation == "col"

    def test_arithmetic(self):
        a = SpangleVector([1.0, 2.0])
        b = SpangleVector([3.0, 4.0])
        assert np.allclose((a + b).data, [4.0, 6.0])
        assert np.allclose((a - b).data, [-2.0, -2.0])
        assert np.allclose((2 * a).data, [2.0, 4.0])
        assert np.allclose((a + 1.0).data, [2.0, 3.0])
        assert a.hadamard(b).data.tolist() == [3.0, 8.0]
        assert a.dot(b) == 11.0

    def test_orientation_mismatch(self):
        a = SpangleVector([1.0], "col")
        b = SpangleVector([1.0], "row")
        with pytest.raises(ShapeMismatchError):
            a + b
        with pytest.raises(ShapeMismatchError):
            a.hadamard(b)

    def test_length_mismatch(self):
        with pytest.raises(ShapeMismatchError):
            SpangleVector([1.0]) + SpangleVector([1.0, 2.0])

    def test_norm_diff_and_map(self):
        a = SpangleVector([1.0, -2.0])
        b = SpangleVector([0.0, 0.0])
        assert a.norm_diff(b) == 3.0
        assert np.allclose(a.map(np.abs).data, [1.0, 2.0])

    def test_constructors(self):
        assert SpangleVector.zeros(4).data.sum() == 0.0
        assert SpangleVector.full(3, 2.0).data.tolist() == [2.0] * 3

    def test_equality(self):
        assert SpangleVector([1.0]) == SpangleVector([1.0])
        assert SpangleVector([1.0]) != SpangleVector([1.0], "row")


class TestOffsetArray:
    def test_roundtrip(self):
        chunk = Chunk.from_sparse(1000, [5, 600, 999], [1.0, 2.0, 3.0])
        enc = OffsetArrayChunk.from_chunk(chunk)
        assert enc.valid_count == 3
        assert list(enc.indices()) == [5, 600, 999]
        assert enc.to_chunk() == chunk

    def test_get(self):
        enc = OffsetArrayChunk(10, np.array([2, 7]), np.array([5.0, 9.0]))
        assert enc.get(2) == 5.0
        assert enc.get(3) is None
        with pytest.raises(ArrayError):
            enc.get(10)

    def test_to_dense(self):
        enc = OffsetArrayChunk(4, np.array([1]), np.array([7.0]))
        assert enc.to_dense(0).tolist() == [0.0, 7.0, 0.0, 0.0]

    def test_sorts_input(self):
        enc = OffsetArrayChunk(10, np.array([7, 2]), np.array([9.0, 5.0]))
        assert list(enc.indices()) == [2, 7]
        assert list(enc.values()) == [5.0, 9.0]

    def test_validation(self):
        with pytest.raises(ArrayError):
            OffsetArrayChunk(10, np.array([1, 2]), np.array([1.0]))
        with pytest.raises(ArrayError):
            OffsetArrayChunk(10, np.array([10]), np.array([1.0]))

    def test_conversion_rule(self):
        # 64k cells: flat bitmask = 8 KiB; offsets win below 1024 nnz
        assert bitmask_bytes(65_536) == 8192
        assert offset_array_bytes(1000) < bitmask_bytes(65_536)
        sparse_chunk = Chunk.from_sparse(
            65_536, np.arange(100), np.ones(100))
        assert should_use_offsets(sparse_chunk)
        dense_chunk = Chunk.from_dense(np.ones(65_536))
        assert not should_use_offsets(dense_chunk)

    def test_encode_static(self):
        tiny = Chunk.from_sparse(65_536, [1, 2], [1.0, 2.0])
        assert isinstance(encode_static(tiny), OffsetArrayChunk)
        dense = Chunk.from_dense(np.ones(64))
        assert encode_static(dense) is dense
        already = OffsetArrayChunk.from_chunk(tiny)
        assert encode_static(already) is already

    def test_encode_static_shrinks(self):
        tiny = Chunk.from_sparse(65_536, [1, 2, 3], np.ones(3))
        assert encode_static(tiny).nbytes < tiny.nbytes
