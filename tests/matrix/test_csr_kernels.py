"""Tests for the CSR sparse execution tier in matrix multiply.

Three layers under test: the block kernels (``_csr_join`` must be
bit-identical to the legacy ``_coo_join``; the one-sided scatter
kernel must agree with dense BLAS), the driver-side configuration
surface (kernel kind, threshold override, nnz balancing), and the
optimizer integration (the ``matmul_sparse_execution`` rule fires on
sparse operands and the result stays byte-identical across kernels
and backends).
"""

import numpy as np
import pytest

from repro.engine import ClusterContext
from repro.engine.costmodel import ClusterCostModel
from repro.errors import EngineError
from repro.matrix import SpangleMatrix
from repro.matrix.multiply import (
    SPARSE_KERNEL_THRESHOLD,
    _BlockKernel,
    _coo_join,
    _csr_join,
    _scatter_partial,
    set_sparse_kernel,
    set_sparse_threshold,
    sparse_config,
    sparse_threshold,
)


@pytest.fixture()
def ctx():
    return ClusterContext(num_executors=4, default_parallelism=4)


def sparse_ints(shape, density, seed, lo=-4, hi=5):
    """Integer-valued sparse blocks: float64 arithmetic on small ints
    is exact, so every kernel ordering must produce identical bytes."""
    rng = np.random.default_rng(seed)
    dense = rng.integers(lo, hi, size=shape).astype(np.float64)
    dense[rng.random(shape) >= density] = 0.0
    return dense


def coo_triples(dense, seed):
    """(rows, ks, vals) for a dense block, in Fortran offset order —
    the order chunk.indices() yields them in."""
    rows, cols = np.nonzero(dense.T)  # transpose → column-major walk
    return (cols.astype(np.int64), rows.astype(np.int64),
            dense[cols, rows])


# ----------------------------------------------------------------------
# join kernels
# ----------------------------------------------------------------------

class TestCsrJoin:
    def test_bit_identical_to_coo_join(self):
        a = sparse_ints((17, 23), 0.15, seed=3)
        b = sparse_ints((23, 11), 0.2, seed=4)
        a_rows, a_ks, a_vals = coo_triples(a, 3)
        b_ks, b_cols, b_vals = coo_triples(b, 4)
        shape = (17, 11)
        coo = _coo_join(a_rows, a_ks, a_vals, b_ks, b_cols, b_vals,
                        shape)
        csr = _csr_join(a_rows, a_ks, a_vals, b_ks, b_cols, b_vals,
                        shape)
        assert coo is not None and csr is not None
        np.testing.assert_array_equal(coo.rows, csr.rows)
        np.testing.assert_array_equal(coo.cols, csr.cols)
        # bit-identical values, not merely allclose
        assert coo.vals.tobytes() == csr.vals.tobytes()

    def test_no_matching_k_returns_none(self):
        a = np.zeros((6, 8))
        b = np.zeros((8, 5))
        a[2, 0] = 3.0   # only k=0 on the left
        b[7, 1] = 2.0   # only k=7 on the right
        args = coo_triples(a, 0) + coo_triples(b, 0) + ((6, 5),)
        assert _coo_join(*args) is None
        assert _csr_join(*args) is None

    def test_duplicate_k_expansion(self):
        # several entries sharing one k on both sides → full cross
        # product per k, in the COO path's repeat/tile order
        a = np.zeros((4, 3))
        a[0, 1] = 2.0
        a[3, 1] = 5.0
        b = np.zeros((3, 4))
        b[1, 0] = 7.0
        b[1, 3] = -1.0
        args = coo_triples(a, 0) + coo_triples(b, 0) + ((4, 4),)
        coo = _coo_join(*args)
        csr = _csr_join(*args)
        np.testing.assert_array_equal(coo.rows, csr.rows)
        np.testing.assert_array_equal(coo.cols, csr.cols)
        np.testing.assert_array_equal(coo.vals, csr.vals)
        dense = np.zeros((4, 4))
        np.add.at(dense, (csr.rows, csr.cols), csr.vals)
        np.testing.assert_array_equal(dense, a @ b)


class TestScatterKernel:
    def _chunk(self, ctx, dense):
        m = SpangleMatrix.from_numpy(ctx, dense, dense.shape)
        (_cid, chunk), = m.array.rdd.collect()
        return chunk

    def test_sparse_left_dense_right(self, ctx):
        a = sparse_ints((12, 9), 0.1, seed=5)
        b = sparse_ints((9, 7), 0.9, seed=6)
        out = _scatter_partial(self._chunk(ctx, a),
                               self._chunk(ctx, b),
                               a.shape, b.shape, sparse_on_left=True)
        np.testing.assert_array_equal(out, a @ b)

    def test_dense_left_sparse_right(self, ctx):
        a = sparse_ints((12, 9), 0.9, seed=7)
        b = sparse_ints((9, 7), 0.1, seed=8)
        out = _scatter_partial(self._chunk(ctx, a),
                               self._chunk(ctx, b),
                               a.shape, b.shape, sparse_on_left=False)
        np.testing.assert_array_equal(out, a @ b)

    def test_all_zero_product_returns_none(self, ctx):
        a = np.zeros((4, 4))
        a[0, 0] = 1.0
        b = np.zeros((4, 4))
        b[3, 3] = 1.0  # a's k=0 never meets b's k=3
        assert _scatter_partial(self._chunk(ctx, a),
                                self._chunk(ctx, b),
                                a.shape, b.shape,
                                sparse_on_left=True) is None


# ----------------------------------------------------------------------
# configuration surface
# ----------------------------------------------------------------------

class TestSparseConfig:
    def test_threshold_default_comes_from_cost_model(self):
        model = ClusterCostModel()
        assert sparse_threshold(model) == pytest.approx(
            model.sparse_kernel_threshold())
        # the calibrated default reproduces the legacy constant
        assert sparse_threshold(model) == pytest.approx(
            SPARSE_KERNEL_THRESHOLD, rel=0.5)

    def test_threshold_fallback_without_model(self):
        assert sparse_threshold(None) == SPARSE_KERNEL_THRESHOLD

    def test_override_wins_over_model(self):
        try:
            set_sparse_threshold(0.123)
            assert sparse_threshold(ClusterCostModel()) == 0.123
        finally:
            set_sparse_threshold(None)

    def test_repro_level_exports(self):
        import repro

        assert repro.set_sparse_threshold is set_sparse_threshold
        assert repro.sparse_config is sparse_config

    def test_unknown_kernel_rejected(self):
        with pytest.raises(EngineError):
            set_sparse_kernel("blas")

    def test_sparse_config_restores_state(self):
        with sparse_config(kernel="coo", threshold=0.5, balance=False):
            assert sparse_threshold(None) == 0.5
        assert sparse_threshold(None) == SPARSE_KERNEL_THRESHOLD


# ----------------------------------------------------------------------
# end-to-end: kernels and backends agree byte-for-byte
# ----------------------------------------------------------------------

class TestEndToEnd:
    def _product(self, ctx, seed=11, **config):
        a = sparse_ints((40, 30), 0.05, seed=seed)
        b = sparse_ints((30, 20), 0.05, seed=seed + 1)
        ma = SpangleMatrix.from_numpy(ctx, a, (10, 10))
        mb = SpangleMatrix.from_numpy(ctx, b, (10, 10))
        if config:
            with sparse_config(**config):
                return a @ b, ma.multiply(mb).to_numpy()
        return a @ b, ma.multiply(mb).to_numpy()

    def test_csr_matches_numpy_exactly(self, ctx):
        expected, got = self._product(ctx)
        np.testing.assert_array_equal(got, expected)

    def test_kernels_byte_identical(self, ctx):
        _, auto = self._product(ctx)
        _, coo = self._product(ctx, kernel="coo", balance=False)
        _, csr = self._product(ctx, kernel="csr")
        _, dense = self._product(ctx, kernel="dense")
        assert auto.tobytes() == coo.tobytes() == csr.tobytes() \
            == dense.tobytes()

    def test_backends_byte_identical(self):
        serial = ClusterContext(num_executors=1,
                                default_parallelism=1)
        _, one = self._product(serial)
        threaded = ClusterContext(num_executors=4,
                                  default_parallelism=4)
        _, many = self._product(threaded)
        with ClusterContext(num_executors=2,
                            backend="process") as ctx:
            _, proc = self._product(ctx)
        assert one.tobytes() == many.tobytes() == proc.tobytes()

    def test_local_join_agrees(self, ctx):
        a = sparse_ints((40, 30), 0.05, seed=21)
        b = sparse_ints((30, 20), 0.05, seed=22)
        ma = SpangleMatrix.from_numpy(ctx, a, (10, 10))
        mb = SpangleMatrix.from_numpy(ctx, b, (10, 10))
        shuffled = ma.multiply(mb).to_numpy()
        local = ma.multiply(mb, local_join=True).to_numpy()
        assert shuffled.tobytes() == local.tobytes()

    def test_optimizer_rule_fires_on_sparse_operands(self, ctx):
        a = sparse_ints((40, 30), 0.05, seed=31)
        b = sparse_ints((30, 20), 0.05, seed=32)
        ma = SpangleMatrix.from_numpy(ctx, a, (10, 10))
        mb = SpangleMatrix.from_numpy(ctx, b, (10, 10))
        text = ma.multiply(mb).explain(optimized=True)
        assert "matmul_sparse_execution" in text
        assert "kernel=" in text

    def test_optimizer_rule_skips_dense_operands(self, ctx):
        a = np.arange(1.0, 1201.0).reshape(40, 30)
        b = np.arange(1.0, 601.0).reshape(30, 20)
        ma = SpangleMatrix.from_numpy(ctx, a, (10, 10))
        mb = SpangleMatrix.from_numpy(ctx, b, (10, 10))
        product = ma.multiply(mb)
        assert "matmul_sparse_execution" not in \
            product.explain(optimized=True)
        np.testing.assert_allclose(product.to_numpy(), a @ b)

    def test_nnz_stats_recorded(self, ctx):
        a = sparse_ints((40, 30), 0.05, seed=41)
        b = sparse_ints((30, 20), 0.05, seed=42)
        ma = SpangleMatrix.from_numpy(ctx, a, (10, 10))
        mb = SpangleMatrix.from_numpy(ctx, b, (10, 10))
        ctx.nnz_stats.clear()
        ma.multiply(mb).to_numpy()
        stage, loads = ctx.nnz_stats.last()
        assert stage in ("matmul-k", "matmul-gather")
        assert loads and min(loads) >= 0.0
        assert ctx.nnz_stats.gauges()["imbalance"] >= 1.0


# ----------------------------------------------------------------------
# _BlockKernel contract
# ----------------------------------------------------------------------

class TestBlockKernel:
    def test_pickles_by_value(self):
        import pickle

        kernel = _BlockKernel((4, 4), (4, 4), "csr", 0.02, 0.1)
        clone = pickle.loads(pickle.dumps(kernel))
        assert clone.kind == "csr"
        assert clone.gate == 0.02
        assert clone.scatter_gate == 0.1
        assert clone.left_shape == (4, 4)

    def test_empty_block_short_circuits(self, ctx):
        dense = np.zeros((4, 4))
        dense[1, 2] = 1.0
        m = SpangleMatrix.from_numpy(ctx, dense, (4, 4),
                                     sparse_zeros=False)
        (_cid, chunk), = m.array.rdd.collect()
        from repro.core.chunk import Chunk

        empty = Chunk.empty(16)
        kernel = _BlockKernel((4, 4), (4, 4), "csr", 0.02, 0.1)
        assert kernel(empty, chunk) is None
        assert kernel(chunk, empty) is None
