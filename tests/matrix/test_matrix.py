"""Tests for SpangleMatrix: kernels, multiplication, local join, transpose."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import ClusterContext
from repro.errors import ArrayError, ShapeMismatchError
from repro.matrix import SpangleMatrix, SpangleVector
from repro.matrix.multiply import prepare_local


@pytest.fixture()
def ctx():
    return ClusterContext(num_executors=4, default_parallelism=4)


def random_sparse(shape, density, seed):
    rng = np.random.default_rng(seed)
    dense = rng.random(shape)
    dense[rng.random(shape) >= density] = 0.0
    return dense


class TestConstruction:
    def test_from_numpy_roundtrip(self, ctx):
        dense = random_sparse((30, 20), 0.3, seed=0)
        m = SpangleMatrix.from_numpy(ctx, dense, (8, 8))
        assert np.allclose(m.to_numpy(), dense)
        assert m.nnz() == int((dense != 0).sum())

    def test_zeros_invalid_by_default(self, ctx):
        dense = np.zeros((10, 10))
        dense[0, 0] = 1.0
        m = SpangleMatrix.from_numpy(ctx, dense, (5, 5))
        assert m.nnz() == 1
        assert m.array.num_chunks_materialized() == 1

    def test_dense_mode_keeps_zeros(self, ctx):
        dense = np.zeros((4, 4))
        m = SpangleMatrix.from_numpy(ctx, dense, (2, 2),
                                     sparse_zeros=False)
        assert m.nnz() == 16

    def test_from_coo(self, ctx):
        dense = random_sparse((25, 17), 0.2, seed=1)
        r, c = np.nonzero(dense)
        m = SpangleMatrix.from_coo(ctx, r, c, dense[r, c], dense.shape,
                                   (8, 8))
        assert np.allclose(m.to_numpy(), dense)

    def test_from_coo_length_mismatch(self, ctx):
        with pytest.raises(ShapeMismatchError):
            SpangleMatrix.from_coo(ctx, [0], [0, 1], [1.0], (2, 2),
                                   (2, 2))

    def test_requires_2d(self, ctx):
        from repro.core import ArrayRDD

        arr = ArrayRDD.from_numpy(ctx, np.ones((2, 2, 2)), (1, 1, 1))
        with pytest.raises(ShapeMismatchError):
            SpangleMatrix(arr)

    def test_block_id_mapping(self, ctx):
        m = SpangleMatrix.from_numpy(ctx, np.ones((20, 30)), (10, 10))
        assert m.grid_rows == 2 and m.grid_cols == 3
        for rb in range(2):
            for cb in range(3):
                cid = m.chunk_id_of(rb, cb)
                assert m.row_block_of(cid) == rb
                assert m.col_block_of(cid) == cb


class TestMatVec:
    def test_dot_vector(self, ctx):
        dense = random_sparse((40, 33), 0.25, seed=2)
        m = SpangleMatrix.from_numpy(ctx, dense, (16, 16))
        v = SpangleVector(np.arange(33, dtype=np.float64))
        assert np.allclose(m.dot_vector(v).data, dense @ v.data)

    def test_vector_dot(self, ctx):
        dense = random_sparse((40, 33), 0.25, seed=3)
        m = SpangleMatrix.from_numpy(ctx, dense, (16, 16))
        v = SpangleVector(np.arange(40, dtype=np.float64), "row")
        assert np.allclose(m.vector_dot(v).data, v.data @ dense)

    def test_vt_m_via_opt2_transpose(self, ctx):
        """v.T into vector_dot: the opt2 path, no physical transpose."""
        dense = random_sparse((20, 15), 0.3, seed=4)
        m = SpangleMatrix.from_numpy(ctx, dense, (8, 8))
        col = SpangleVector(np.arange(20, dtype=np.float64), "col")
        assert np.allclose(m.vector_dot(col.T).data, col.data @ dense)

    def test_orientation_enforced(self, ctx):
        m = SpangleMatrix.from_numpy(ctx, np.ones((4, 4)), (2, 2))
        with pytest.raises(ShapeMismatchError):
            m.dot_vector(SpangleVector(np.ones(4), "row"))
        with pytest.raises(ShapeMismatchError):
            m.vector_dot(SpangleVector(np.ones(4), "col"))

    def test_size_enforced(self, ctx):
        m = SpangleMatrix.from_numpy(ctx, np.ones((4, 6)), (2, 2))
        with pytest.raises(ShapeMismatchError):
            m.dot_vector(SpangleVector(np.ones(4)))

    def test_hyper_sparse_kernel_path(self, ctx):
        dense = np.zeros((300, 300))
        dense[5, 7] = 2.0
        dense[250, 100] = 3.0
        m = SpangleMatrix.from_numpy(ctx, dense, (64, 64))
        v = SpangleVector(np.ones(300))
        assert np.allclose(m.dot_vector(v).data, dense @ v.data)


class TestMultiply:
    @pytest.mark.parametrize("local", [False, True])
    def test_matmul_matches_numpy(self, ctx, local):
        a = random_sparse((37, 29), 0.3, seed=5)
        b = random_sparse((29, 23), 0.3, seed=6)
        ma = SpangleMatrix.from_numpy(ctx, a, (8, 8))
        mb = SpangleMatrix.from_numpy(ctx, b, (8, 8))
        result = ma.multiply(mb, local_join=local)
        assert np.allclose(result.to_numpy(), a @ b)

    def test_dimension_checks(self, ctx):
        ma = SpangleMatrix.from_numpy(ctx, np.ones((4, 6)), (2, 2))
        mb = SpangleMatrix.from_numpy(ctx, np.ones((4, 6)), (2, 2))
        with pytest.raises(ShapeMismatchError):
            ma.multiply(mb)
        mc = SpangleMatrix.from_numpy(ctx, np.ones((6, 4)), (3, 4))
        with pytest.raises(ShapeMismatchError):
            ma.multiply(mc)  # contraction blocks disagree (2 vs 3)

    def test_local_join_skips_input_shuffle(self, ctx):
        a = random_sparse((64, 64), 0.2, seed=7)
        b = random_sparse((64, 64), 0.2, seed=8)
        ma = SpangleMatrix.from_numpy(ctx, a, (16, 16))
        mb = SpangleMatrix.from_numpy(ctx, b, (16, 16))
        la, lb = prepare_local(ma, mb)
        la.materialize()
        lb.materialize()
        before = ctx.metrics.snapshot()
        la.multiply(lb, local_join=True).array.rdd.count()
        local_delta = ctx.metrics.snapshot() - before

        ma.materialize()
        mb.materialize()
        before = ctx.metrics.snapshot()
        ma.multiply(mb).array.rdd.count()
        default_delta = ctx.metrics.snapshot() - before

        assert local_delta.shuffles_performed \
            < default_delta.shuffles_performed
        assert local_delta.shuffle_bytes < default_delta.shuffle_bytes

    def test_bitmask_gating_skips_empty_pairs(self, ctx):
        # block-diagonal inputs: off-diagonal block pairs must never
        # produce partial products
        a = np.zeros((32, 32))
        a[:16, :16] = 1.0
        b = np.zeros((32, 32))
        b[16:, 16:] = 1.0
        ma = SpangleMatrix.from_numpy(ctx, a, (16, 16))
        mb = SpangleMatrix.from_numpy(ctx, b, (16, 16))
        result = ma.multiply(mb)
        assert np.allclose(result.to_numpy(), a @ b)
        assert result.array.num_chunks_materialized() == 0  # all zero

    def test_sparse_times_sparse(self, ctx):
        a = random_sparse((100, 80), 0.01, seed=9)
        b = random_sparse((80, 60), 0.01, seed=10)
        ma = SpangleMatrix.from_numpy(ctx, a, (32, 32))
        mb = SpangleMatrix.from_numpy(ctx, b, (32, 32))
        assert np.allclose(ma.multiply(mb).to_numpy(), a @ b)

    def test_gram(self, ctx):
        a = random_sparse((50, 30), 0.2, seed=11)
        m = SpangleMatrix.from_numpy(ctx, a, (16, 16))
        assert np.allclose(m.gram().to_numpy(), a.T @ a)

    def test_offset_encoded_operand(self, ctx):
        a = random_sparse((64, 64), 0.002, seed=12)
        b = random_sparse((64, 64), 0.3, seed=13)
        ma = SpangleMatrix.from_numpy(ctx, a, (32, 32)).optimize_static()
        mb = SpangleMatrix.from_numpy(ctx, b, (32, 32))
        assert np.allclose(ma.multiply(mb).to_numpy(), a @ b)


class TestTransposeAndElementwise:
    def test_transpose(self, ctx):
        a = random_sparse((30, 18), 0.3, seed=14)
        m = SpangleMatrix.from_numpy(ctx, a, (8, 8))
        t = m.transpose()
        assert t.shape == (18, 30)
        assert np.allclose(t.to_numpy(), a.T)

    def test_double_transpose(self, ctx):
        a = random_sparse((20, 12), 0.4, seed=15)
        m = SpangleMatrix.from_numpy(ctx, a, (8, 8))
        assert np.allclose(m.transpose().transpose().to_numpy(), a)

    def test_add_subtract_hadamard(self, ctx):
        a = random_sparse((24, 24), 0.4, seed=16)
        b = random_sparse((24, 24), 0.4, seed=17)
        ma = SpangleMatrix.from_numpy(ctx, a, (8, 8))
        mb = SpangleMatrix.from_numpy(ctx, b, (8, 8))
        assert np.allclose(ma.add(mb).to_numpy(), a + b)
        assert np.allclose(ma.subtract(mb).to_numpy(), a - b)
        assert np.allclose(ma.hadamard(mb).to_numpy(), a * b)

    def test_subtract_self_is_empty(self, ctx):
        a = random_sparse((16, 16), 0.5, seed=18)
        m = SpangleMatrix.from_numpy(ctx, a, (8, 8))
        diff = m.subtract(m)
        assert diff.nnz() == 0

    def test_elementwise_shape_checks(self, ctx):
        ma = SpangleMatrix.from_numpy(ctx, np.ones((4, 4)), (2, 2))
        mb = SpangleMatrix.from_numpy(ctx, np.ones((4, 6)), (2, 2))
        with pytest.raises(ShapeMismatchError):
            ma.add(mb)
        mc = SpangleMatrix.from_numpy(ctx, np.ones((4, 4)), (4, 4))
        with pytest.raises(ShapeMismatchError):
            ma.add(mc)

    def test_scale(self, ctx):
        a = random_sparse((10, 10), 0.5, seed=19)
        m = SpangleMatrix.from_numpy(ctx, a, (5, 5))
        assert np.allclose(m.scale(2.5).to_numpy(), a * 2.5)
        with pytest.raises(ArrayError):
            m.scale(0)

    def test_sparse_memory_smaller_than_dense(self, ctx):
        sparse = random_sparse((256, 256), 0.01, seed=20)
        ms = SpangleMatrix.from_numpy(ctx, sparse, (64, 64))
        md = SpangleMatrix.from_numpy(ctx, np.ones((256, 256)), (64, 64))
        assert ms.memory_bytes() < md.memory_bytes() / 5


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(4, 24),
    k=st.integers(4, 24),
    m=st.integers(4, 24),
    density=st.floats(0.05, 0.9),
    seed=st.integers(0, 1000),
)
def test_matmul_property(n, k, m, density, seed):
    ctx = ClusterContext(num_executors=2, default_parallelism=2)
    a = random_sparse((n, k), density, seed)
    b = random_sparse((k, m), density, seed + 1)
    ma = SpangleMatrix.from_numpy(ctx, a, (5, 5))
    mb = SpangleMatrix.from_numpy(ctx, b, (5, 5))
    assert np.allclose(ma.multiply(mb).to_numpy(), a @ b)
