"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "Spangle" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explode"])


class TestInfo:
    def test_lists_packages(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro.engine" in out
        assert "repro.ml" in out
        assert "ICDE 2021" in out


class TestDemo:
    def test_runs_end_to_end(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "chunks:" in out
        assert "accuracy:" in out
        assert "shuffle bytes" in out


class TestBench:
    def test_unknown_figure_rejected(self, capsys):
        assert main(["bench", "--figure", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown figure" in err
