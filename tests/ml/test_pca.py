"""Tests for distributed PCA (built on the MᵀM kernel)."""

import numpy as np
import pytest

from repro.engine import ClusterContext
from repro.errors import ArrayError, ShapeMismatchError
from repro.matrix import SpangleMatrix
from repro.ml.pca import pca


@pytest.fixture()
def ctx():
    return ClusterContext(num_executors=4, default_parallelism=4)


def correlated_data(n=400, f=8, seed=0):
    """Rows with two dominant directions of variance."""
    rng = np.random.default_rng(seed)
    latent = rng.normal(size=(n, 2)) * np.array([5.0, 2.0])
    mixing = rng.normal(size=(2, f))
    return latent @ mixing + rng.normal(scale=0.1, size=(n, f)) + 3.0


def reference_pca(data, k):
    centered = data - data.mean(axis=0)
    _u, s, vt = np.linalg.svd(centered, full_matrices=False)
    variance = s ** 2 / (data.shape[0] - 1)
    return vt[:k], variance[:k]


class TestPCA:
    def test_components_match_svd(self, ctx):
        data = correlated_data()
        m = SpangleMatrix.from_numpy(ctx, data, (64, 8),
                                     sparse_zeros=False)
        model = pca(m, 2)
        ref_components, ref_variance = reference_pca(data, 2)
        for got, expected in zip(model.components, ref_components):
            # eigenvectors are sign-ambiguous
            assert (np.allclose(got, expected, atol=1e-6)
                    or np.allclose(got, -expected, atol=1e-6))
        assert np.allclose(model.explained_variance, ref_variance,
                           rtol=1e-6)

    def test_variance_ratio_ordering(self, ctx):
        data = correlated_data(seed=1)
        m = SpangleMatrix.from_numpy(ctx, data, (64, 8),
                                     sparse_zeros=False)
        model = pca(m, 4)
        ratios = model.explained_variance_ratio
        assert (np.diff(ratios) <= 1e-12).all()
        # two planted directions dominate
        assert ratios[:2].sum() > 0.95
        assert ratios.sum() <= 1.0 + 1e-9

    def test_transform_matches_reference(self, ctx):
        data = correlated_data(seed=2)
        m = SpangleMatrix.from_numpy(ctx, data, (64, 8),
                                     sparse_zeros=False)
        model = pca(m, 2)
        got = model.transform(data[:5])
        centered = data[:5] - data.mean(axis=0)
        expected = centered @ model.components.T
        assert np.allclose(got, expected)

    def test_distributed_transform_agrees(self, ctx):
        data = correlated_data(seed=3)
        m = SpangleMatrix.from_numpy(ctx, data, (64, 8),
                                     sparse_zeros=False)
        model = pca(m, 3)
        local = model.transform(data)
        distributed = model.transform_distributed(m)
        assert np.allclose(local, distributed, atol=1e-8)

    def test_reconstruction_quality(self, ctx):
        data = correlated_data(seed=4)
        m = SpangleMatrix.from_numpy(ctx, data, (64, 8),
                                     sparse_zeros=False)
        model = pca(m, 2)
        projected = model.transform(data)
        reconstructed = projected @ model.components + model.mean
        relative_error = (np.linalg.norm(data - reconstructed)
                          / np.linalg.norm(data - data.mean(axis=0)))
        assert relative_error < 0.1  # two components capture the data

    def test_sparse_input(self, ctx):
        rng = np.random.default_rng(5)
        data = rng.random((200, 10))
        data[data < 0.7] = 0.0
        m = SpangleMatrix.from_numpy(ctx, data, (64, 10))
        model = pca(m, 3)
        ref_components, ref_variance = reference_pca(data, 3)
        assert np.allclose(model.explained_variance, ref_variance,
                           rtol=1e-6)

    def test_validation(self, ctx):
        data = correlated_data(n=50)
        m = SpangleMatrix.from_numpy(ctx, data, (16, 8),
                                     sparse_zeros=False)
        with pytest.raises(ArrayError):
            pca(m, 0)
        with pytest.raises(ArrayError):
            pca(m, 9)
        model = pca(m, 2)
        with pytest.raises(ShapeMismatchError):
            model.transform(np.zeros((1, 5)))

    def test_deterministic_orientation(self, ctx):
        data = correlated_data(seed=6)
        m = SpangleMatrix.from_numpy(ctx, data, (64, 8),
                                     sparse_zeros=False)
        a = pca(m, 2)
        b = pca(m, 2)
        assert np.allclose(a.components, b.components)
        for row in a.components:
            assert row[np.argmax(np.abs(row))] > 0
