"""Tests for optimizers (incl. Adagrad — the paper's stated future
work), the linear SVM, and the CG / ridge-regression solvers."""

import numpy as np
import pytest

from repro.engine import ClusterContext
from repro.errors import ConvergenceError, ShapeMismatchError, SpangleError
from repro.matrix import SpangleMatrix
from repro.ml import (
    AdagradOptimizer,
    DistributedSamples,
    LinearSVM,
    LogisticRegression,
    MomentumOptimizer,
    SGDOptimizer,
    conjugate_gradient,
    ridge_regression,
)
from repro.ml.optimizers import resolve_optimizer
from repro.ml.solvers import normal_equation_operator


@pytest.fixture()
def ctx():
    return ClusterContext(num_executors=4, default_parallelism=4)


def separable_samples(ctx, ns=2000, nf=16, seed=0, noise=0.03):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(ns, nf))
    w = rng.normal(size=nf)
    y = (X @ w > 0).astype(np.float64)
    flips = rng.random(ns) < noise
    y[flips] = 1.0 - y[flips]
    rows, cols = np.nonzero(X)
    return DistributedSamples.from_coo(
        ctx, rows, cols, X[rows, cols], y, nf, chunk_rows=128), X, y


class TestOptimizers:
    def test_sgd_update(self):
        opt = SGDOptimizer(0.5)
        x = np.array([1.0, 2.0])
        g = np.array([0.2, -0.4])
        assert np.allclose(opt.update(x, g), [0.9, 2.2])

    def test_adagrad_scales_per_coordinate(self):
        opt = AdagradOptimizer(1.0, epsilon=1e-12)
        x = np.zeros(2)
        g = np.array([4.0, 0.01])
        out = opt.update(x, g)
        # both coordinates take ~unit steps despite 400x gradient gap
        assert out[0] == pytest.approx(-1.0, rel=1e-3)
        assert out[1] == pytest.approx(-1.0, rel=1e-3)

    def test_adagrad_steps_shrink(self):
        opt = AdagradOptimizer(1.0)
        x = np.zeros(1)
        g = np.ones(1)
        first = opt.update(x, g)
        second = opt.update(first, g)
        assert abs(second[0] - first[0]) < abs(first[0])

    def test_momentum_accumulates(self):
        opt = MomentumOptimizer(0.1, momentum=0.9)
        x = np.zeros(1)
        g = np.ones(1)
        x1 = opt.update(x, g)
        x2 = opt.update(x1, g)
        assert (x1[0] - 0) == pytest.approx(-0.1)
        assert (x2[0] - x1[0]) == pytest.approx(-0.19)

    def test_resolve(self):
        assert isinstance(resolve_optimizer(None, 0.5), SGDOptimizer)
        assert isinstance(resolve_optimizer("adagrad", 0.5),
                          AdagradOptimizer)
        inst = MomentumOptimizer(0.2)
        assert resolve_optimizer(inst, 0.5) is inst
        with pytest.raises(SpangleError):
            resolve_optimizer("adam", 0.5)
        with pytest.raises(SpangleError):
            resolve_optimizer(42, 0.5)

    def test_validation(self):
        with pytest.raises(SpangleError):
            SGDOptimizer(0)
        with pytest.raises(SpangleError):
            AdagradOptimizer(epsilon=0)
        with pytest.raises(SpangleError):
            MomentumOptimizer(momentum=1.0)

    def test_logistic_with_adagrad_learns(self, ctx):
        samples, _X, _y = separable_samples(ctx, seed=1)
        model = LogisticRegression(max_iterations=120,
                                   chunks_per_step=2,
                                   optimizer="adagrad")
        model.fit(samples)
        assert model.accuracy(samples) > 0.9

    def test_adagrad_state_resets_between_fits(self, ctx):
        samples, _X, _y = separable_samples(ctx, ns=600, seed=2)
        model = LogisticRegression(max_iterations=40,
                                   chunks_per_step=2, seed=9,
                                   optimizer="adagrad")
        model.fit(samples)
        first = model.weights.data.copy()
        model.fit(samples)
        assert np.allclose(model.weights.data, first)


class TestLinearSVM:
    def test_learns_separable_data(self, ctx):
        samples, X, y = separable_samples(ctx, seed=3)
        svm = LinearSVM(max_iterations=200, chunks_per_step=2)
        svm.fit(samples)
        assert svm.accuracy(samples) > 0.9

    def test_predict_api(self, ctx):
        samples, X, y = separable_samples(ctx, seed=4)
        svm = LinearSVM(max_iterations=150, chunks_per_step=2)
        svm.fit(samples)
        predictions = svm.predict(X[:50])
        assert set(np.unique(predictions)) <= {0, 1}
        assert (predictions == y[:50]).mean() > 0.85

    def test_unfitted_raises(self):
        with pytest.raises(ConvergenceError):
            LinearSVM().predict(np.zeros((1, 3)))

    def test_regularization_shrinks_weights(self, ctx):
        samples, _X, _y = separable_samples(ctx, ns=800, seed=5)
        loose = LinearSVM(max_iterations=100, regularization=0.0,
                          chunks_per_step=2, seed=7)
        loose.fit(samples)
        tight = LinearSVM(max_iterations=100, regularization=0.5,
                          chunks_per_step=2, seed=7)
        tight.fit(samples)
        assert np.linalg.norm(tight.weights.data) \
            < np.linalg.norm(loose.weights.data)

    def test_with_adagrad(self, ctx):
        samples, _X, _y = separable_samples(ctx, seed=6)
        svm = LinearSVM(max_iterations=150, chunks_per_step=2,
                        optimizer="adagrad")
        svm.fit(samples)
        assert svm.accuracy(samples) > 0.88

    def test_opt1_paths_agree(self, ctx):
        samples, _X, _y = separable_samples(ctx, ns=600, seed=7)
        fast = LinearSVM(max_iterations=30, opt1=True, seed=4)
        fast.fit(samples)
        slow = LinearSVM(max_iterations=30, opt1=False, seed=4)
        slow.fit(samples)
        assert np.allclose(fast.weights.data, slow.weights.data)


class TestConjugateGradient:
    def test_solves_spd_system(self):
        rng = np.random.default_rng(0)
        basis = rng.normal(size=(12, 12))
        A = basis @ basis.T + 12 * np.eye(12)
        b = rng.normal(size=12)
        result = conjugate_gradient(lambda v: A @ v, b,
                                    tolerance=1e-12)
        assert np.allclose(result.solution.data,
                           np.linalg.solve(A, b), atol=1e-8)
        assert result.residual_norm < 1e-12
        assert result.residual_history[-1] < result.residual_history[0]

    def test_identity_converges_immediately(self):
        b = np.array([1.0, 2.0, 3.0])
        result = conjugate_gradient(lambda v: v, b)
        assert result.iterations <= 2
        assert np.allclose(result.solution.data, b)

    def test_non_spd_rejected(self):
        A = np.array([[1.0, 0.0], [0.0, -1.0]])
        with pytest.raises(ConvergenceError):
            conjugate_gradient(lambda v: A @ v, np.array([0.0, 1.0]))

    def test_divergence_flag(self):
        rng = np.random.default_rng(1)
        basis = rng.normal(size=(30, 30))
        A = basis @ basis.T + 1e-9 * np.eye(30)  # ill-conditioned
        b = rng.normal(size=30)
        with pytest.raises(ConvergenceError):
            conjugate_gradient(lambda v: A @ v, b, tolerance=1e-14,
                               max_iterations=2,
                               raise_on_divergence=True)


class TestRidgeRegression:
    def test_matches_lstsq(self, ctx):
        rng = np.random.default_rng(2)
        A = rng.random((80, 20))
        A[A < 0.4] = 0
        b = rng.normal(size=80)
        m = SpangleMatrix.from_numpy(ctx, A, (16, 16))
        result = ridge_regression(m, b, regularization=1e-12,
                                  tolerance=1e-12)
        reference = np.linalg.lstsq(A, b, rcond=None)[0]
        assert np.allclose(result.solution.data, reference, atol=1e-6)

    def test_regularization_matches_closed_form(self, ctx):
        rng = np.random.default_rng(3)
        A = rng.random((50, 12))
        b = rng.normal(size=50)
        lam = 0.8
        m = SpangleMatrix.from_numpy(ctx, A, (16, 8),
                                     sparse_zeros=False)
        result = ridge_regression(m, b, regularization=lam,
                                  tolerance=1e-12)
        closed = np.linalg.solve(A.T @ A + lam * np.eye(12), A.T @ b)
        assert np.allclose(result.solution.data, closed, atol=1e-8)

    def test_operator_never_builds_gram(self, ctx):
        rng = np.random.default_rng(4)
        A = rng.random((40, 10))
        m = SpangleMatrix.from_numpy(ctx, A, (16, 8),
                                     sparse_zeros=False)
        apply_op = normal_equation_operator(m, 0.5)
        v = rng.normal(size=10)
        assert np.allclose(apply_op(v), A.T @ (A @ v) + 0.5 * v)

    def test_target_length_checked(self, ctx):
        m = SpangleMatrix.from_numpy(ctx, np.ones((4, 3)), (2, 2),
                                     sparse_zeros=False)
        with pytest.raises(ShapeMismatchError):
            ridge_regression(m, np.ones(5))
        with pytest.raises(ShapeMismatchError):
            ridge_regression(m, np.ones(4), regularization=-1)
