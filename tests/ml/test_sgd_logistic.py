"""Tests for Eq.-2 chunking, parallel SGD sampling, logistic regression."""

import numpy as np
import pytest

from repro.engine import ClusterContext
from repro.errors import ArrayError, ConvergenceError, ShapeMismatchError
from repro.ml import DistributedSamples, LogisticRegression, SampleChunk
from repro.ml.sgd import chunk_id, partition_of, row_chunk_of


@pytest.fixture()
def ctx():
    return ClusterContext(num_executors=4, default_parallelism=4)


def separable_dataset(ns=2000, nf=16, noise=0.05, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(ns, nf))
    true_w = rng.normal(size=nf)
    labels = (X @ true_w > 0).astype(np.float64)
    flips = rng.random(ns) < noise
    labels[flips] = 1.0 - labels[flips]
    rows, cols = np.nonzero(X)
    return rows, cols, X[rows, cols], labels, X


class TestEquation2:
    def test_chunk_ids_unique(self):
        seen = set()
        for p in range(8):
            for r in range(100):
                cid = chunk_id(8, r, p)
                assert cid not in seen
                seen.add(cid)

    def test_reversal(self):
        for p in range(8):
            for r in range(50):
                cid = chunk_id(8, r, p)
                assert partition_of(cid, 8) == p
                assert row_chunk_of(cid, 8) == r

    def test_chunks_land_on_their_partitions(self, ctx):
        rows, cols, vals, labels, _X = separable_dataset(seed=1)
        samples = DistributedSamples.from_coo(
            ctx, rows, cols, vals, labels, 16, chunk_rows=100,
            num_partitions=4)
        for index, records in enumerate(
                samples.rdd.glom().collect()):
            for cid, _chunk in records:
                assert partition_of(cid, 4) == index

    def test_every_row_stored_once(self, ctx):
        rows, cols, vals, labels, _X = separable_dataset(ns=777, seed=2)
        samples = DistributedSamples.from_coo(
            ctx, rows, cols, vals, labels, 16, chunk_rows=64)
        total = samples.rdd.map(lambda kv: kv[1].num_rows).sum()
        assert total == 777
        assert samples.total_rows == 777
        assert samples.nnz() == len(vals)


class TestSampleChunk:
    def _chunk(self, seed=3):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(20, 8))
        rows, cols = np.nonzero(X)
        labels = rng.integers(0, 2, 20).astype(np.float64)
        return SampleChunk(rows, cols, X[rows, cols], labels, 20), X

    def test_dot(self):
        chunk, X = self._chunk()
        x = np.arange(8, dtype=np.float64)
        assert np.allclose(chunk.dot(x), X @ x)

    def test_t_dot_opt1_equals_materialized(self):
        chunk, X = self._chunk(seed=4)
        e = np.random.default_rng(5).random(20)
        fast = chunk.t_dot(e, 8)
        slow = chunk.t_dot_materialized(e, 8)
        assert np.allclose(fast, X.T @ e)
        assert np.allclose(slow, X.T @ e)

    def test_validation(self):
        with pytest.raises(ShapeMismatchError):
            SampleChunk([0], [0, 1], [1.0], [1.0], 1)
        with pytest.raises(ShapeMismatchError):
            SampleChunk([0], [0], [1.0], [1.0, 0.0], 1)

    def test_chunk_rows_validation(self, ctx):
        with pytest.raises(ArrayError):
            DistributedSamples.from_coo(ctx, [0], [0], [1.0], [1.0], 4,
                                        chunk_rows=0)


class TestSampling:
    def test_gradient_is_deterministic_per_seed(self, ctx):
        rows, cols, vals, labels, _X = separable_dataset(seed=6)
        samples = DistributedSamples.from_coo(
            ctx, rows, cols, vals, labels, 16, chunk_rows=128)
        x = np.zeros(16)
        g1, n1 = samples.sampled_gradient(x, step=3, seed=11)
        g2, n2 = samples.sampled_gradient(x, step=3, seed=11)
        assert np.allclose(g1, g2) and n1 == n2

    def test_different_steps_sample_differently(self, ctx):
        rows, cols, vals, labels, _X = separable_dataset(seed=7)
        samples = DistributedSamples.from_coo(
            ctx, rows, cols, vals, labels, 16, chunk_rows=64)
        x = np.random.default_rng(8).random(16)
        g1, _ = samples.sampled_gradient(x, step=0)
        g2, _ = samples.sampled_gradient(x, step=1)
        assert not np.allclose(g1, g2)

    def test_sampling_shuffles_nothing(self, ctx):
        rows, cols, vals, labels, _X = separable_dataset(seed=9)
        samples = DistributedSamples.from_coo(
            ctx, rows, cols, vals, labels, 16, chunk_rows=64).cache()
        samples.nnz()
        before = ctx.metrics.snapshot()
        samples.sampled_gradient(np.zeros(16), step=0)
        delta = ctx.metrics.snapshot() - before
        assert delta.shuffle_bytes == 0
        assert delta.shuffles_performed == 0

    def test_opt1_matches_non_opt1(self, ctx):
        rows, cols, vals, labels, _X = separable_dataset(seed=10)
        samples = DistributedSamples.from_coo(
            ctx, rows, cols, vals, labels, 16, chunk_rows=64)
        x = np.random.default_rng(11).random(16)
        fast, _ = samples.sampled_gradient(x, step=2, opt1=True)
        slow, _ = samples.sampled_gradient(x, step=2, opt1=False)
        assert np.allclose(fast, slow)

    def test_from_generator(self, ctx):
        def gen(p_id):
            rng = np.random.default_rng(p_id)
            for _ in range(3):
                X = rng.normal(size=(10, 6))
                r, c = np.nonzero(X)
                labels = rng.integers(0, 2, 10).astype(float)
                yield SampleChunk(r, c, X[r, c], labels, 10)

        samples = DistributedSamples.from_generator(ctx, 4, gen, 6)
        assert samples.total_rows == 120
        assert samples.chunks_per_partition == [3, 3, 3, 3]
        grad, count = samples.sampled_gradient(np.zeros(6), step=0)
        assert count == 40  # one chunk per partition


class TestLogisticRegression:
    def test_learns_separable_data(self, ctx):
        rows, cols, vals, labels, X = separable_dataset(seed=12)
        samples = DistributedSamples.from_coo(
            ctx, rows, cols, vals, labels, 16, chunk_rows=128)
        lr = LogisticRegression(max_iterations=200, chunks_per_step=2)
        lr.fit(samples)
        assert lr.accuracy(samples) > 0.9
        assert lr.history.iterations > 0
        assert lr.history.total_time_s > 0

    @pytest.mark.parametrize("opt1,opt2", [(True, True), (False, True),
                                           (True, False), (False, False)])
    def test_all_optimization_variants_learn(self, ctx, opt1, opt2):
        rows, cols, vals, labels, _X = separable_dataset(ns=1200,
                                                         seed=13)
        samples = DistributedSamples.from_coo(
            ctx, rows, cols, vals, labels, 16, chunk_rows=128)
        lr = LogisticRegression(max_iterations=80, opt1=opt1, opt2=opt2,
                                chunks_per_step=2, seed=5)
        lr.fit(samples)
        assert lr.accuracy(samples) > 0.85

    def test_variants_agree_exactly(self, ctx):
        """opt1/opt2 are performance knobs — results must be identical."""
        rows, cols, vals, labels, _X = separable_dataset(ns=800, seed=14)
        samples = DistributedSamples.from_coo(
            ctx, rows, cols, vals, labels, 16, chunk_rows=128)
        weights = []
        for opt1, opt2 in [(True, True), (False, False)]:
            lr = LogisticRegression(max_iterations=30, opt1=opt1,
                                    opt2=opt2, seed=7)
            lr.fit(samples)
            weights.append(lr.weights.data)
        assert np.allclose(weights[0], weights[1])

    def test_tolerance_stops_early(self, ctx):
        rows, cols, vals, labels, _X = separable_dataset(ns=600, seed=15)
        samples = DistributedSamples.from_coo(
            ctx, rows, cols, vals, labels, 16, chunk_rows=600)
        lr = LogisticRegression(step_size=1e-6, tolerance=1e-3,
                                max_iterations=500)
        lr.fit(samples)
        assert lr.history.iterations < 500

    def test_predict_api(self, ctx):
        rows, cols, vals, labels, X = separable_dataset(seed=16)
        samples = DistributedSamples.from_coo(
            ctx, rows, cols, vals, labels, 16, chunk_rows=128)
        lr = LogisticRegression(max_iterations=100, chunks_per_step=2)
        lr.fit(samples)
        probs = lr.predict_proba(X[:10])
        assert ((probs >= 0) & (probs <= 1)).all()
        preds = lr.predict(X[:10])
        assert set(np.unique(preds)) <= {0, 1}

    def test_unfitted_raises(self):
        lr = LogisticRegression()
        with pytest.raises(ConvergenceError):
            lr.predict(np.zeros((1, 4)))

    def test_train_test_generalization(self, ctx):
        rows, cols, vals, labels, _X = separable_dataset(ns=3000,
                                                         seed=17)
        # 80/20 row split, like the paper's datasets
        cut = 2400
        train_sel = rows < cut
        train = DistributedSamples.from_coo(
            ctx, rows[train_sel], cols[train_sel], vals[train_sel],
            labels[:cut], 16, chunk_rows=128)
        test = DistributedSamples.from_coo(
            ctx, rows[~train_sel] - cut, cols[~train_sel],
            vals[~train_sel], labels[cut:], 16, chunk_rows=128)
        lr = LogisticRegression(max_iterations=150, chunks_per_step=2)
        lr.fit(train)
        assert lr.accuracy(test) > 0.85
