"""Tests for BitmaskGraph and the decomposed PageRank."""

import numpy as np
import pytest

from repro.engine import ClusterContext
from repro.errors import ArrayError, ShapeMismatchError
from repro.ml import BitmaskGraph, pagerank
from repro.ml.pagerank import pagerank_reference


@pytest.fixture()
def ctx():
    return ClusterContext(num_executors=4, default_parallelism=4)


def random_edges(n, m, seed=0):
    rng = np.random.default_rng(seed)
    edges = np.stack([rng.integers(0, n, m), rng.integers(0, n, m)],
                     axis=1)
    return np.unique(edges, axis=0)


class TestBitmaskGraph:
    def test_edges_roundtrip(self, ctx):
        edges = random_edges(120, 700, seed=1)
        g = BitmaskGraph.from_edges(ctx, edges, 120, block_size=32)
        assert g.num_edges() == len(edges)
        dense = g.to_dense()
        for src, dst in edges:
            assert dense[dst, src]
        assert dense.sum() == len(edges)

    def test_duplicate_edges_collapse(self, ctx):
        edges = [(0, 1), (0, 1), (1, 2)]
        g = BitmaskGraph.from_edges(ctx, edges, 3, block_size=4)
        assert g.num_edges() == 2
        # out-degree counts the raw edge list (weights), as the paper's
        # transition construction does
        assert g.out_degrees[0] == 2.0

    def test_vertex_range_validation(self, ctx):
        with pytest.raises(ArrayError):
            BitmaskGraph.from_edges(ctx, [(0, 5)], 3)

    def test_edge_shape_validation(self, ctx):
        with pytest.raises(ShapeMismatchError):
            BitmaskGraph.from_edges(ctx, np.zeros((3, 3)), 10)

    def test_bad_mode(self, ctx):
        with pytest.raises(ArrayError):
            BitmaskGraph.from_edges(ctx, [(0, 1)], 2, mode="dense")

    def test_spmv_matches_dense(self, ctx):
        edges = random_edges(90, 400, seed=2)
        g = BitmaskGraph.from_edges(ctx, edges, 90, block_size=32)
        dense = g.to_dense().astype(np.float64)
        x = np.random.default_rng(3).random(90)
        assert np.allclose(g.spmv(x), dense @ x)

    def test_spmv_length_check(self, ctx):
        g = BitmaskGraph.from_edges(ctx, [(0, 1)], 4)
        with pytest.raises(ShapeMismatchError):
            g.spmv(np.ones(5))

    def test_modes_agree(self, ctx):
        edges = random_edges(100, 300, seed=4)
        x = np.random.default_rng(5).random(100)
        results = []
        for mode in ("auto", "sparse", "super_sparse"):
            g = BitmaskGraph.from_edges(ctx, edges, 100, block_size=32,
                                        mode=mode)
            results.append(g.spmv(x))
        assert np.allclose(results[0], results[1])
        assert np.allclose(results[0], results[2])

    def test_one_bit_per_edge_memory(self, ctx):
        # dense-ish block: bitmask storage ~ cells/8 bytes, far below
        # 8 bytes per edge
        n = 256
        edges = [(i, j) for i in range(n) for j in range(0, n, 2)]
        g = BitmaskGraph.from_edges(ctx, edges, n, block_size=256,
                                    mode="sparse")
        assert g.memory_bytes() == n * n // 8
        assert g.memory_bytes() < len(edges) * 8

    def test_super_sparse_smaller_when_few_edges(self, ctx):
        edges = [(0, 1), (500, 900)]
        sparse = BitmaskGraph.from_edges(ctx, edges, 1000,
                                         block_size=1000, mode="sparse")
        hyper = BitmaskGraph.from_edges(ctx, edges, 1000,
                                        block_size=1000,
                                        mode="super_sparse")
        assert hyper.memory_bytes() < sparse.memory_bytes()


class TestPageRank:
    def test_matches_reference(self, ctx):
        edges = random_edges(150, 900, seed=6)
        g = BitmaskGraph.from_edges(ctx, edges, 150, block_size=64)
        result = pagerank(g, max_iterations=20)
        reference = pagerank_reference(edges, 150, max_iterations=20)
        assert np.allclose(result.ranks, reference, atol=1e-12)
        assert result.iterations == 20
        assert len(result.iteration_times_s) == 20

    def test_ranks_sum_reasonable(self, ctx):
        edges = random_edges(100, 500, seed=7)
        g = BitmaskGraph.from_edges(ctx, edges, 100)
        ranks = pagerank(g, max_iterations=30).ranks
        # with dangling mass leaking, sum is <= 1 but bounded below
        assert 0.1 < ranks.sum() <= 1.0 + 1e-9
        assert (ranks > 0).all()

    def test_hub_ranks_higher(self, ctx):
        # star graph: everything points at vertex 0
        edges = [(i, 0) for i in range(1, 50)]
        g = BitmaskGraph.from_edges(ctx, edges, 50)
        ranks = pagerank(g, max_iterations=20).ranks
        assert ranks[0] == ranks.max()
        assert ranks[0] > 10 * ranks[1]

    def test_early_stop_with_tolerance(self, ctx):
        edges = [(i, (i + 1) % 20) for i in range(20)]
        g = BitmaskGraph.from_edges(ctx, edges, 20)
        result = pagerank(g, max_iterations=100, tolerance=1e-10)
        assert result.iterations < 100
        assert result.residual < 1e-10

    def test_top_k(self, ctx):
        edges = [(i, 0) for i in range(1, 10)]
        g = BitmaskGraph.from_edges(ctx, edges, 10)
        result = pagerank(g, max_iterations=10)
        top = result.top_k(3)
        assert top[0][0] == 0
        assert len(top) == 3

    def test_dangling_vertices_handled(self, ctx):
        # vertex 2 has no out-edges: w_2 = 0 and nothing propagates
        edges = [(0, 1), (1, 2)]
        g = BitmaskGraph.from_edges(ctx, edges, 3)
        ranks = pagerank(g, max_iterations=10).ranks
        reference = pagerank_reference(edges, 3, max_iterations=10)
        assert np.allclose(ranks, reference)


class TestSparseKernels:
    """ISSUE 9: the cached-CSR spmv path vs the offset decode."""

    @pytest.fixture()
    def ctx(self):
        return ClusterContext(num_executors=4, default_parallelism=4)

    def _graph(self, ctx, balance="hash"):
        rng = np.random.default_rng(17)
        edges = np.unique(rng.integers(0, 256, size=(2000, 2)),
                          axis=0)
        return BitmaskGraph.from_edges(ctx, edges, 256, block_size=64,
                                       balance=balance).cache(), edges

    def test_spmv_kernels_bit_identical(self, ctx):
        graph, _edges = self._graph(ctx)
        x = np.random.default_rng(3).random(256)
        offsets = graph.spmv(x, kernel="offsets")
        csr = graph.spmv(x, kernel="csr")
        assert offsets.tobytes() == csr.tobytes()

    def test_pagerank_kernels_bit_identical(self, ctx):
        graph, edges = self._graph(ctx)
        offsets = pagerank(graph, max_iterations=15,
                           kernel="offsets")
        csr = pagerank(graph, max_iterations=15, kernel="csr")
        assert offsets.ranks.tobytes() == csr.ranks.tobytes()
        reference = pagerank_reference(edges, 256, max_iterations=15)
        assert np.allclose(csr.ranks, reference)

    def test_unknown_kernel_rejected(self, ctx):
        graph, _edges = self._graph(ctx)
        with pytest.raises(ArrayError):
            graph.spmv(np.zeros(256), kernel="blas")

    def test_nnz_balanced_graph_same_ranks_per_placement(self, ctx):
        # placement fixes the order driver-side partials sum in, so
        # identity is asserted per graph; across placements the ranks
        # agree to float tolerance
        hashed, _edges = self._graph(ctx, balance="hash")
        balanced, _edges = self._graph(ctx, balance="nnz")
        r_hash = pagerank(hashed, max_iterations=10, kernel="csr")
        r_nnz = pagerank(balanced, max_iterations=10, kernel="csr")
        assert np.allclose(r_hash.ranks, r_nnz.ranks, atol=1e-12)
        assert balanced.to_dense().tobytes() \
            == hashed.to_dense().tobytes()

    def test_unknown_balance_rejected(self, ctx):
        with pytest.raises(ArrayError):
            BitmaskGraph.from_edges(ctx, [(0, 1)], 4, balance="lpt")
