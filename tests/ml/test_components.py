"""Tests for label-propagation connected components on BitmaskGraph."""

import numpy as np
import pytest

from repro.engine import ClusterContext
from repro.ml import BitmaskGraph
from repro.ml.components import connected_components


@pytest.fixture()
def ctx():
    return ClusterContext(num_executors=4, default_parallelism=4)


def make_graph(ctx, edges, n, block=16):
    return BitmaskGraph.from_edges(ctx, edges, n, block_size=block)


class TestConnectedComponents:
    def test_two_rings(self, ctx):
        edges = [(i, (i + 1) % 5) for i in range(5)]
        edges += [(5 + i, 5 + (i + 1) % 5) for i in range(5)]
        result = connected_components(make_graph(ctx, edges, 10))
        assert result.num_components == 2
        assert len(set(result.labels[:5])) == 1
        assert len(set(result.labels[5:])) == 1
        assert result.labels[0] != result.labels[5]
        assert result.sizes == {0: 5, 5: 5}

    def test_isolated_vertices_are_singletons(self, ctx):
        edges = [(0, 1)]
        result = connected_components(make_graph(ctx, edges, 4))
        assert result.num_components == 3
        assert result.labels[0] == result.labels[1]
        assert result.labels[2] != result.labels[3]

    def test_direction_ignored(self, ctx):
        # a one-way chain still forms one component
        edges = [(i, i + 1) for i in range(9)]
        result = connected_components(make_graph(ctx, edges, 10))
        assert result.num_components == 1
        assert (result.labels == 0).all()

    def test_matches_networkx(self, ctx):
        import networkx as nx

        rng = np.random.default_rng(0)
        n = 120
        edges = np.unique(
            np.stack([rng.integers(0, n, 150),
                      rng.integers(0, n, 150)], axis=1), axis=0)
        edges = edges[edges[:, 0] != edges[:, 1]]
        result = connected_components(
            make_graph(ctx, edges, n, block=32))

        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        graph.add_edges_from(map(tuple, edges))
        reference = list(nx.connected_components(graph))
        assert result.num_components == len(reference)
        for component in reference:
            labels = {result.labels[v] for v in component}
            assert len(labels) == 1

    def test_label_is_component_minimum(self, ctx):
        edges = [(7, 3), (3, 9), (9, 7)]
        result = connected_components(make_graph(ctx, edges, 10))
        for v in (3, 7, 9):
            assert result.labels[v] == 3

    def test_converges_within_diameter_rounds(self, ctx):
        # a path of length 20 needs ~20 rounds; the cap must not bite
        edges = [(i, i + 1) for i in range(20)]
        result = connected_components(make_graph(ctx, edges, 21),
                                      max_iterations=50)
        assert result.num_components == 1
        assert result.iterations <= 25
