"""Tests for distributed k-means."""

import numpy as np
import pytest

from repro.engine import ClusterContext
from repro.errors import ArrayError
from repro.matrix import SpangleMatrix
from repro.ml.kmeans import kmeans


@pytest.fixture()
def ctx():
    return ClusterContext(num_executors=4, default_parallelism=4)


def blobs(n_per=80, f=5, separation=10.0, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=separation, size=(3, f))
    rows = np.concatenate([
        center + rng.normal(size=(n_per, f)) for center in centers])
    labels = np.repeat(np.arange(3), n_per)
    shuffle = rng.permutation(rows.shape[0])
    return rows[shuffle], labels[shuffle], centers


def as_matrix(ctx, rows, block_rows=64):
    return SpangleMatrix.from_numpy(
        ctx, rows, (block_rows, rows.shape[1]), sparse_zeros=False)


class TestKMeans:
    def test_recovers_blobs(self, ctx):
        rows, labels, true_centers = blobs(seed=1)
        model = kmeans(as_matrix(ctx, rows), 3, seed=2)
        predicted = model.predict(rows)
        # every true cluster maps to exactly one predicted cluster
        for true_label in range(3):
            got = predicted[labels == true_label]
            values, counts = np.unique(got, return_counts=True)
            assert counts.max() / counts.sum() > 0.98
        # learned centers close to the planted ones (any order)
        for center in true_centers:
            nearest = np.linalg.norm(model.centers - center,
                                     axis=1).min()
            assert nearest < 1.0

    def test_inertia_monotone_nonincreasing(self, ctx):
        rows, _labels, _centers = blobs(seed=3)
        model = kmeans(as_matrix(ctx, rows), 3, seed=4)
        history = np.array(model.inertia_history)
        assert (np.diff(history) <= 1e-6).all()

    def test_converges_quickly_on_separated_data(self, ctx):
        rows, _labels, _centers = blobs(separation=50.0, seed=5)
        model = kmeans(as_matrix(ctx, rows), 3, seed=6)
        assert model.iterations < 15

    def test_k_equals_one(self, ctx):
        rows, _labels, _centers = blobs(seed=7)
        model = kmeans(as_matrix(ctx, rows), 1, seed=8)
        assert np.allclose(model.centers[0], rows.mean(axis=0),
                           atol=1e-8)

    def test_predict_shapes(self, ctx):
        rows, _labels, _centers = blobs(seed=9)
        model = kmeans(as_matrix(ctx, rows), 3, seed=10)
        single = model.predict(rows[0])
        assert single.shape == (1,)
        many = model.predict(rows[:17])
        assert many.shape == (17,)
        assert set(np.unique(many)) <= {0, 1, 2}

    def test_validation(self, ctx):
        rows, _labels, _centers = blobs(seed=11)
        matrix = as_matrix(ctx, rows)
        with pytest.raises(ArrayError):
            kmeans(matrix, 0)
        with pytest.raises(ArrayError):
            kmeans(matrix, rows.shape[0] + 1)
        narrow = SpangleMatrix.from_numpy(ctx, rows, (64, 2),
                                          sparse_zeros=False)
        with pytest.raises(ArrayError):
            kmeans(narrow, 3)

    def test_deterministic_given_seed(self, ctx):
        rows, _labels, _centers = blobs(seed=12)
        a = kmeans(as_matrix(ctx, rows), 3, seed=13)
        b = kmeans(as_matrix(ctx, rows), 3, seed=13)
        assert np.allclose(a.centers, b.centers)
        assert a.inertia == b.inertia

    def test_matches_reference_inertia(self, ctx):
        """Our converged inertia is as good as a plain numpy Lloyd's."""
        rows, _labels, _centers = blobs(seed=14)
        model = kmeans(as_matrix(ctx, rows), 3, seed=15)

        # reference Lloyd's from the same initialization policy
        rng = np.random.default_rng(15)
        centers = rows[rng.choice(rows.shape[0], 3, replace=False)]
        for _ in range(50):
            distances = ((rows[:, None, :]
                          - centers[None, :, :]) ** 2).sum(axis=2)
            labels = distances.argmin(axis=1)
            for k in range(3):
                if (labels == k).any():
                    centers[k] = rows[labels == k].mean(axis=0)
        reference = ((rows - centers[labels]) ** 2).sum()
        assert model.inertia == pytest.approx(reference, rel=0.05)
