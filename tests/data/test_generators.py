"""Tests for the synthetic dataset generators (Table II substitutes)."""

import numpy as np
import pytest

from repro.data import (
    GRAPH_SPECS,
    LR_SPECS,
    MATRIX_SPECS,
    chl_like,
    scaled_graph,
    scaled_lr_dataset,
    scaled_matrix,
    sdss_like,
)
from repro.data.raster import chl_slice, sdss_stack


class TestSDSS:
    def test_bands_share_object_positions(self):
        bands = sdss_like(2, shape=(64, 64), seed=0)
        assert set(bands) == {"u", "g", "r", "i", "z"}
        u_valid = ~np.isnan(bands["u"][0])
        z_valid = ~np.isnan(bands["z"][0])
        assert np.array_equal(u_valid, z_valid)

    def test_images_mostly_empty(self):
        bands = sdss_like(3, shape=(128, 128), seed=1)
        for scene in bands["u"]:
            assert np.isnan(scene).mean() > 0.5

    def test_determinism(self):
        a = sdss_like(1, shape=(32, 32), seed=7)
        b = sdss_like(1, shape=(32, 32), seed=7)
        assert np.array_equal(a["u"][0], b["u"][0], equal_nan=True)

    def test_stack(self):
        bands = sdss_like(3, shape=(32, 32), seed=2)
        values, valid = sdss_stack(bands["g"])
        assert values.shape == (32, 32, 3)
        assert not np.isnan(values).any()
        assert valid.sum() > 0


class TestCHL:
    def test_validity_fraction(self):
        _values, valid = chl_like((120, 160, 2), ocean_fraction=0.34,
                                  seed=0)
        # ocean fraction minus cloud dropouts
        assert 0.25 < valid.mean() < 0.40

    def test_land_mask_is_persistent(self):
        _values, valid = chl_like((60, 60, 3), seed=1)
        # a cell that is land at t=0 is land at every t (clouds only
        # remove ocean cells)
        land = ~valid.any(axis=2)
        assert land.mean() > 0.5

    def test_values_positive_where_valid(self):
        values, valid = chl_like((40, 40, 1), seed=2)
        assert (values[valid] > 0).all()

    def test_spatial_correlation(self):
        # a random mask has ~50% neighbour agreement; ours must be high
        _values, valid = chl_slice((100, 100), seed=3)
        agree = (valid[:-1, :] == valid[1:, :]).mean()
        assert agree > 0.8


class TestGraphs:
    def test_specs_preserve_edge_vertex_ratio(self):
        for name, spec in GRAPH_SPECS.items():
            scaled_ratio = spec.edges / spec.vertices
            assert scaled_ratio == pytest.approx(
                spec.edge_vertex_ratio, rel=0.01), name

    def test_twitter_has_highest_ratio(self):
        ratios = {
            name: spec.edge_vertex_ratio
            for name, spec in GRAPH_SPECS.items()
        }
        assert max(ratios, key=ratios.get) == "twitter"

    def test_generation_matches_spec(self):
        edges, n = scaled_graph("enron", seed=0)
        spec = GRAPH_SPECS["enron"]
        assert n == spec.vertices
        assert len(edges) == spec.edges
        assert len(np.unique(edges, axis=0)) == len(edges)
        assert (edges[:, 0] != edges[:, 1]).all()  # no self-loops

    def test_in_degree_skew(self):
        edges, n = scaled_graph("epinions", seed=1)
        in_degrees = np.bincount(edges[:, 1], minlength=n)
        # power-law-ish: the top 1% of vertices absorb >10% of edges
        top = np.sort(in_degrees)[::-1][:max(n // 100, 1)]
        assert top.sum() > 0.1 * len(edges)

    def test_determinism(self):
        a, _ = scaled_graph("enron", seed=5)
        b, _ = scaled_graph("enron", seed=5)
        assert np.array_equal(a, b)


class TestMatrices:
    def test_density_preserving_specs(self):
        for name in ("covtype", "mouse"):
            spec = MATRIX_SPECS[name]
            assert spec.density == pytest.approx(spec.paper_density,
                                                 rel=0.01), name

    def test_per_row_preserving_specs(self):
        for name in ("hardesty", "mawi"):
            spec = MATRIX_SPECS[name]
            per_row = spec.nnz / spec.shape[0]
            assert per_row == pytest.approx(spec.paper_nnz_per_row,
                                            rel=0.05), name

    def test_density_ordering_matches_paper(self):
        densities = [MATRIX_SPECS[n].density
                     for n in ("covtype", "mouse", "hardesty", "mawi")]
        assert densities == sorted(densities, reverse=True)

    def test_generation(self):
        rows, cols, values, shape = scaled_matrix("mouse", seed=0)
        spec = MATRIX_SPECS["mouse"]
        assert shape == spec.shape
        assert len(values) == spec.nnz
        assert (values > 0).all()
        assert rows.max() < shape[0] and cols.max() < shape[1]
        # no duplicate positions
        assert len(set(zip(rows.tolist(), cols.tolist()))) == len(rows)

    def test_covtype_keeps_narrow_feature_dim(self):
        assert MATRIX_SPECS["covtype"].shape[1] == 54


class TestLRDatasets:
    def test_spec_scaling(self):
        for name, spec in LR_SPECS.items():
            assert spec.train_rows >= 256
            assert spec.features >= 64
            assert spec.train_rows < spec.paper_train_rows

    def test_size_ordering_matches_paper(self):
        sizes = [LR_SPECS[n].train_rows * LR_SPECS[n].nnz_per_row
                 for n in ("url", "kddcup2010", "kddcup2012")]
        assert sizes[0] < sizes[1] < sizes[2]

    def test_generation_structure(self):
        data = scaled_lr_dataset("url", seed=0)
        spec = data["spec"]
        train = data["train"]
        assert train["labels"].size == spec.train_rows
        assert set(np.unique(train["labels"])) <= {0.0, 1.0}
        assert train["rows"].size == spec.train_rows * spec.nnz_per_row
        assert data["test"]["labels"].size == spec.test_rows

    def test_labels_balanced(self):
        data = scaled_lr_dataset("url", seed=1)
        mean = data["train"]["labels"].mean()
        assert 0.3 < mean < 0.7

    def test_separator_is_learnable(self):
        from repro.engine import ClusterContext
        from repro.ml import DistributedSamples, LogisticRegression

        ctx = ClusterContext(4)
        data = scaled_lr_dataset("url", seed=2)
        train = data["train"]
        samples = DistributedSamples.from_coo(
            ctx, train["rows"], train["cols"], train["values"],
            train["labels"], data["spec"].features, chunk_rows=256)
        lr = LogisticRegression(max_iterations=150, chunks_per_step=3)
        lr.fit(samples)
        assert lr.accuracy(samples) > 0.8
