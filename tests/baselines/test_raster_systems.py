"""Tests: the raster baselines compute the same answers as each other
and as dense-numpy references, while exhibiting their architectural
limits (dense loading, driver ingest, disk I/O)."""

import numpy as np
import pytest

from repro.baselines import RasterFramesSystem, SciDBSystem, SciSparkSystem
from repro.baselines.scispark import UnsupportedOperation
from repro.engine import ClusterContext
from repro.errors import OutOfMemoryError


@pytest.fixture()
def ctx():
    return ClusterContext(num_executors=4, default_parallelism=4)


@pytest.fixture()
def scenes():
    rng = np.random.default_rng(0)
    out = []
    for _ in range(3):
        img = rng.random((64, 64)) * 10
        img[rng.random((64, 64)) < 0.7] = np.nan
        out.append(img)
    return out


def reference_mean(scenes, lo=None, hi=None, predicate=None):
    stack = np.stack(scenes)
    if lo is not None:
        stack = stack[:, lo[0]:hi[0] + 1, lo[1]:hi[1] + 1]
    mask = ~np.isnan(stack)
    if predicate is not None:
        with np.errstate(invalid="ignore"):
            mask &= predicate(stack)
    return stack[mask].mean()


class TestSciSpark:
    def test_aggregate_mean(self, ctx, scenes):
        system = SciSparkSystem(ctx)
        tiles = system.load_scenes(scenes, (32, 32))
        assert system.aggregate_mean(tiles) == pytest.approx(
            reference_mean(scenes))

    def test_select_range(self, ctx, scenes):
        system = SciSparkSystem(ctx)
        tiles = system.load_scenes(scenes, (32, 32))
        sel = system.select_range(tiles, (5, 10), (50, 40))
        assert system.aggregate_mean(sel) == pytest.approx(
            reference_mean(scenes, (5, 10), (50, 40)))

    def test_filter_then_mean(self, ctx, scenes):
        system = SciSparkSystem(ctx)
        tiles = system.load_scenes(scenes, (32, 32))
        filtered = system.filter_cells(tiles, lambda t: t > 5.0)
        assert system.aggregate_mean(filtered) == pytest.approx(
            reference_mean(scenes, predicate=lambda s: s > 5.0))

    def test_count_matching(self, ctx, scenes):
        system = SciSparkSystem(ctx)
        tiles = system.load_scenes(scenes, (32, 32))
        stack = np.stack(scenes)
        expected = int((~np.isnan(stack) & (stack > 5.0)).sum())
        assert system.count_matching(tiles, lambda t: t > 5.0) == expected

    def test_dense_ingest_oom(self, ctx, scenes):
        system = SciSparkSystem(ctx, driver_memory_bytes=1000)
        with pytest.raises(OutOfMemoryError):
            system.load_scenes(scenes)

    def test_dense_tiles_use_more_memory_than_sparse(self, ctx, scenes):
        scispark = SciSparkSystem(ctx)
        rasterframes = RasterFramesSystem(ctx)
        dense_bytes = scispark.load_scenes(scenes, (32, 32)) \
            .map(lambda kv: kv[1].nbytes).sum()
        sparse_bytes = rasterframes.memory_bytes(
            rasterframes.load_scenes(scenes, (32, 32)))
        assert dense_bytes > sparse_bytes * 1.5

    def test_no_distributed_matmul(self, ctx):
        system = SciSparkSystem(ctx)
        m = system.load_matrix(np.ones((8, 8)), (4, 4))
        with pytest.raises(UnsupportedOperation):
            m.multiply(m)
        with pytest.raises(UnsupportedOperation):
            m.gram()

    def test_matrix_from_coo_densifies(self, ctx):
        with pytest.raises(OutOfMemoryError):
            SciSparkSystem(ctx).matrix_from_coo(
                [0], [0], [1.0], (100_000, 100_000),
                memory_budget_bytes=10_000)

    def test_matvec(self, ctx):
        from repro.matrix.vector import SpangleVector

        rng = np.random.default_rng(1)
        dense = rng.random((20, 15))
        m = SciSparkSystem(ctx).load_matrix(dense, (8, 8))
        v = SpangleVector(rng.random(15))
        assert np.allclose(m.dot_vector(v).data, dense @ v.data)
        w = SpangleVector(rng.random(20), "row")
        assert np.allclose(m.vector_dot(w).data, w.data @ dense)


class TestRasterFrames:
    def test_aggregate_and_range(self, ctx, scenes):
        system = RasterFramesSystem(ctx)
        frame = system.load_scenes(scenes, (32, 32))
        assert system.aggregate_mean(frame) == pytest.approx(
            reference_mean(scenes))
        sel = system.select_range(frame, (5, 10), (50, 40))
        assert system.aggregate_mean(sel) == pytest.approx(
            reference_mean(scenes, (5, 10), (50, 40)))

    def test_filter(self, ctx, scenes):
        system = RasterFramesSystem(ctx)
        frame = system.load_scenes(scenes, (32, 32))
        filtered = system.filter_cells(frame, lambda v: v > 5.0)
        stack = np.stack(scenes)
        expected = int((~np.isnan(stack) & (stack > 5.0)).sum())
        assert system.count_cells(filtered) == expected

    def test_driver_ingest_oom(self, ctx, scenes):
        system = RasterFramesSystem(ctx, driver_memory_bytes=1000)
        with pytest.raises(OutOfMemoryError):
            system.load_scenes(scenes)

    def test_regrid_tile_aligned(self, ctx, scenes):
        system = RasterFramesSystem(ctx)
        frame = system.load_scenes(scenes, (32, 32))
        results = dict(
            (key, means) for key, means
            in system.regrid_mean(frame, 8).collect())
        # spot-check one window against numpy
        key = next(iter(results))
        scene_id = key[0]
        r0 = key[1] * 8
        c0 = key[2] * 8
        window = scenes[scene_id][r0:r0 + 8, c0:c0 + 8]
        if not np.isnan(window).all():
            assert results[key][0, 0] == pytest.approx(
                np.nanmean(window))

    def test_density(self, ctx, scenes):
        system = RasterFramesSystem(ctx)
        frame = system.load_scenes(scenes, (32, 32))
        got = system.density_windows(frame, 8, 10)
        stack = np.stack(scenes)
        valid = ~np.isnan(stack)
        expected = 0
        for s in range(3):
            counts = valid[s].reshape(8, 8, 8, 8).sum(axis=(1, 3))
            expected += int((counts > 10).sum())
        assert got == expected


class TestSciDB:
    def test_aggregate_and_pushdown(self, ctx, scenes):
        with SciDBSystem(ctx) as db:
            db.store_scenes("img", scenes, (32, 32))
            assert db.aggregate_mean("img") == pytest.approx(
                reference_mean(scenes))
            before = ctx.metrics.snapshot()
            db.aggregate_mean("img", (0, 0), (31, 31))
            delta = ctx.metrics.snapshot() - before
            # pushdown: only one chunk per scene read from disk
            chunk_bytes = 32 * 32 * 8
            assert delta.disk_read_bytes == 3 * chunk_bytes

    def test_conditional_mean(self, ctx, scenes):
        with SciDBSystem(ctx) as db:
            db.store_scenes("img", scenes, (32, 32))
            got = db.aggregate_mean("img",
                                    predicate=lambda r: r > 5.0)
            assert got == pytest.approx(
                reference_mean(scenes, predicate=lambda s: s > 5.0))

    def test_count_matching(self, ctx, scenes):
        with SciDBSystem(ctx) as db:
            db.store_scenes("img", scenes, (32, 32))
            stack = np.stack(scenes)
            expected = int((~np.isnan(stack) & (stack > 5.0)).sum())
            assert db.count_matching(
                "img", lambda r: r > 5.0) == expected

    def test_every_query_pays_disk(self, ctx, scenes):
        with SciDBSystem(ctx) as db:
            db.store_scenes("img", scenes, (32, 32))
            before = ctx.metrics.snapshot()
            db.aggregate_mean("img")
            first = (ctx.metrics.snapshot() - before).disk_read_bytes
            before = ctx.metrics.snapshot()
            db.aggregate_mean("img")
            second = (ctx.metrics.snapshot() - before).disk_read_bytes
            assert first == second > 0  # no in-memory caching

    def test_matrix_roundtrip_and_multiply(self, ctx):
        rng = np.random.default_rng(2)
        a = rng.random((40, 30))
        a[a < 0.5] = 0
        b = rng.random((30, 20))
        b[b < 0.5] = 0
        with SciDBSystem(ctx) as db:
            r, c = np.nonzero(a)
            db.store_matrix("A", r, c, a[r, c], a.shape, block=16)
            r, c = np.nonzero(b)
            db.store_matrix("B", r, c, b[r, c], b.shape, block=16)
            db.multiply("A", "B", "C")
            assert np.allclose(db.matrix_to_numpy("C"), a @ b)

    def test_matmul_temp_budget_timeout(self, ctx):
        from repro.baselines.scidb import SciDBTimeout

        rng = np.random.default_rng(3)
        a = rng.random((64, 64))
        with SciDBSystem(ctx) as db:
            r, c = np.nonzero(a)
            db.store_matrix("A", r, c, a[r, c], a.shape, block=16)
            with pytest.raises(SciDBTimeout):
                db.multiply("A", "A", "AA", max_temp_bytes=1000)

    def test_regrid_and_density(self, ctx, scenes):
        with SciDBSystem(ctx) as db:
            db.store_scenes("img", scenes, (32, 32))
            grid = db.regrid_mean("img", 8)
            assert grid  # produces windows
            stack = np.stack(scenes)
            valid = ~np.isnan(stack)
            expected = 0
            for s in range(3):
                counts = valid[s].reshape(8, 8, 8, 8).sum(axis=(1, 3))
                expected += int((counts > 10).sum())
            assert db.density_windows("img", 8, 10) == expected


class TestSystemsAgree:
    """All four systems must return the same answers on Table-I queries."""

    def test_q1_mean_agrees(self, ctx, scenes):
        expected = reference_mean(scenes)
        scispark = SciSparkSystem(ctx)
        rasterframes = RasterFramesSystem(ctx)
        assert scispark.aggregate_mean(
            scispark.load_scenes(scenes, (32, 32))) \
            == pytest.approx(expected)
        assert rasterframes.aggregate_mean(
            rasterframes.load_scenes(scenes, (32, 32))) \
            == pytest.approx(expected)
        with SciDBSystem(ctx) as db:
            db.store_scenes("img", scenes, (32, 32))
            assert db.aggregate_mean("img") == pytest.approx(expected)

    def test_q5_density_agrees(self, ctx, scenes):
        scispark = SciSparkSystem(ctx)
        rasterframes = RasterFramesSystem(ctx)
        a = scispark.density_windows(
            scispark.load_scenes(scenes, (32, 32)), 8, 10)
        b = rasterframes.density_windows(
            rasterframes.load_scenes(scenes, (32, 32)), 8, 10)
        with SciDBSystem(ctx) as db:
            db.store_scenes("img", scenes, (32, 32))
            c = db.density_windows("img", 8, 10)
        assert a == b == c
