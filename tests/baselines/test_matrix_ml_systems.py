"""Tests for the matrix/ML baselines: COO, MLlib, GraphX, Spark PageRank."""

import numpy as np
import pytest

from repro.baselines import (
    GraphXPageRank,
    LogisticRegressionMLlib,
    MLlibRowMatrix,
    SparkCOOMatrix,
    SparkPageRank,
)
from repro.engine import ClusterContext
from repro.errors import OutOfMemoryError, ShapeMismatchError
from repro.matrix.vector import SpangleVector
from repro.ml import BitmaskGraph, pagerank


@pytest.fixture()
def ctx():
    return ClusterContext(num_executors=4, default_parallelism=4)


def random_sparse(shape, density, seed):
    rng = np.random.default_rng(seed)
    dense = rng.random(shape)
    dense[rng.random(shape) >= density] = 0.0
    return dense


class TestSparkCOO:
    def test_kernels(self, ctx):
        a = random_sparse((30, 20), 0.2, seed=0)
        r, c = np.nonzero(a)
        m = SparkCOOMatrix.from_coo(ctx, r, c, a[r, c], a.shape)
        assert m.nnz() == len(r)
        v = SpangleVector(np.arange(20, dtype=np.float64))
        assert np.allclose(m.dot_vector(v).data, a @ v.data)
        w = SpangleVector(np.arange(30, dtype=np.float64), "row")
        assert np.allclose(m.vector_dot(w).data, w.data @ a)

    def test_multiply(self, ctx):
        a = random_sparse((25, 18), 0.2, seed=1)
        b = random_sparse((18, 12), 0.2, seed=2)
        ra, ca = np.nonzero(a)
        rb, cb = np.nonzero(b)
        ma = SparkCOOMatrix.from_coo(ctx, ra, ca, a[ra, ca], a.shape)
        mb = SparkCOOMatrix.from_coo(ctx, rb, cb, b[rb, cb], b.shape)
        assert np.allclose(ma.multiply(mb).to_numpy(), a @ b)

    def test_gram(self, ctx):
        a = random_sparse((20, 10), 0.3, seed=3)
        r, c = np.nonzero(a)
        m = SparkCOOMatrix.from_coo(ctx, r, c, a[r, c], a.shape)
        assert np.allclose(m.gram().to_numpy(), a.T @ a)

    def test_density_wall(self, ctx):
        """Denser input → intermediate explosion → OOM (the Mouse story)."""
        a = random_sparse((60, 60), 0.5, seed=4)
        r, c = np.nonzero(a)
        m = SparkCOOMatrix.from_coo(ctx, r, c, a[r, c], a.shape)
        with pytest.raises(OutOfMemoryError):
            m.multiply(m, max_intermediate_records=1000)
        with pytest.raises(OutOfMemoryError):
            m.gram(max_intermediate_records=1000)

    def test_hyper_sparse_survives_same_budget(self, ctx):
        a = np.zeros((60, 60))
        a[3, 4] = 1.0
        a[50, 20] = 2.0
        r, c = np.nonzero(a)
        m = SparkCOOMatrix.from_coo(ctx, r, c, a[r, c], a.shape)
        result = m.multiply(m, max_intermediate_records=1000)
        assert np.allclose(result.to_numpy(), a @ a)

    def test_dimension_check(self, ctx):
        a = SparkCOOMatrix.from_coo(ctx, [0], [0], [1.0], (2, 3))
        with pytest.raises(ShapeMismatchError):
            a.multiply(a)


class TestMLlibMatrix:
    def test_kernels(self, ctx):
        a = random_sparse((30, 15), 0.3, seed=5)
        r, c = np.nonzero(a)
        m = MLlibRowMatrix.from_coo(ctx, r, c, a[r, c], a.shape)
        assert m.nnz() == len(r)
        v = SpangleVector(np.arange(15, dtype=np.float64))
        assert np.allclose(m.dot_vector(v).data, a @ v.data)
        w = SpangleVector(np.arange(30, dtype=np.float64), "row")
        assert np.allclose(m.vector_dot(w).data, w.data @ a)

    def test_gram_matches(self, ctx):
        a = random_sparse((25, 12), 0.4, seed=6)
        r, c = np.nonzero(a)
        m = MLlibRowMatrix.from_coo(ctx, r, c, a[r, c], a.shape)
        assert np.allclose(m.gram(), a.T @ a)

    def test_gram_driver_oom(self, ctx):
        a = random_sparse((10, 100), 0.2, seed=7)
        r, c = np.nonzero(a)
        m = MLlibRowMatrix.from_coo(ctx, r, c, a[r, c], a.shape)
        with pytest.raises(OutOfMemoryError):
            m.gram(driver_memory_bytes=1000)


class TestMLlibLogisticRegression:
    def _dataset(self, ns=1500, nf=12, seed=8):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(ns, nf))
        w = rng.normal(size=nf)
        y = (X @ w > 0).astype(np.float64)
        r, c = np.nonzero(X)
        return r, c, X[r, c], y, nf

    def test_learns(self, ctx):
        r, c, v, y, nf = self._dataset()
        lr = LogisticRegressionMLlib(max_iterations=100)
        matrix, labels = lr.ingest(ctx, r, c, v, y, nf)
        lr.fit(matrix, labels)
        assert lr.accuracy(matrix, labels) > 0.9
        assert len(lr.iteration_times_s) > 0

    def test_driver_oom_on_wide_features(self, ctx):
        r, c, v, y, _nf = self._dataset()
        lr = LogisticRegressionMLlib(driver_memory_bytes=1000)
        with pytest.raises(OutOfMemoryError):
            lr.ingest(ctx, r, c, v, y, num_features=10_000)

    def test_executor_oom_on_large_cache(self, ctx):
        r, c, v, y, nf = self._dataset(ns=2000)
        lr = LogisticRegressionMLlib(executor_memory_bytes=10_000)
        with pytest.raises(OutOfMemoryError):
            lr.ingest(ctx, r, c, v, y, nf)


class TestPageRankBaselines:
    def _graph(self, seed=9):
        rng = np.random.default_rng(seed)
        n = 80
        edges = set()
        for i in range(n):
            edges.add((i, (i + 1) % n))  # strongly connected ring
        while len(edges) < 400:
            s, d = rng.integers(0, n, 2)
            if s != d:
                edges.add((int(s), int(d)))
        return np.array(sorted(edges)), n

    def test_graphx_matches_spangle(self, ctx):
        edges, n = self._graph()
        spangle = pagerank(
            BitmaskGraph.from_edges(ctx, edges, n, block_size=32),
            max_iterations=15)
        graphx = GraphXPageRank(ctx).run(edges, n, max_iterations=15)
        assert np.allclose(graphx.ranks, spangle.ranks, atol=1e-10)
        assert len(graphx.iteration_times_s) == 15

    def test_spark_matches_spangle(self, ctx):
        edges, n = self._graph(seed=10)
        spangle = pagerank(
            BitmaskGraph.from_edges(ctx, edges, n, block_size=32),
            max_iterations=15)
        spark = SparkPageRank(ctx).run(edges, n, max_iterations=15)
        assert np.allclose(spark.ranks, spangle.ranks, atol=1e-8)

    def test_spark_shuffles_per_iteration(self, ctx):
        edges, n = self._graph(seed=11)
        before = ctx.metrics.snapshot()
        SparkPageRank(ctx).run(edges, n, max_iterations=3)
        three = (ctx.metrics.snapshot() - before).shuffle_bytes
        before = ctx.metrics.snapshot()
        SparkPageRank(ctx).run(edges, n, max_iterations=6)
        six = (ctx.metrics.snapshot() - before).shuffle_bytes
        assert six > three * 1.5

    def test_spangle_shuffles_nothing_per_iteration(self, ctx):
        edges, n = self._graph(seed=12)
        graph = BitmaskGraph.from_edges(ctx, edges, n,
                                        block_size=32).cache()
        graph.num_edges()
        before = ctx.metrics.snapshot()
        pagerank(graph, max_iterations=5)
        delta = ctx.metrics.snapshot() - before
        assert delta.shuffle_bytes == 0
