"""Tests: the Table-I queries on Spangle match dense-numpy references
and the baseline systems' answers."""

import numpy as np
import pytest

from repro.baselines import RasterFramesSystem, SciDBSystem, SciSparkSystem
from repro.data import sdss_like
from repro.data.raster import sdss_stack
from repro.engine import ClusterContext
from repro.errors import ArrayError
from repro.queries import SpangleRasterQueries, load_spangle_dataset
from repro.queries.ssdb import reference_window_counts


@pytest.fixture()
def ctx():
    return ClusterContext(num_executors=4, default_parallelism=4)


@pytest.fixture(scope="module")
def bands():
    return sdss_like(4, shape=(96, 96), objects_per_image=30, seed=0)


@pytest.fixture()
def queries(ctx, bands):
    ds = load_spangle_dataset(ctx, bands, chunk_shape=(32, 32, 1))
    return SpangleRasterQueries(ds)


@pytest.fixture(scope="module")
def cube(bands):
    return sdss_stack(bands["u"])


class TestQ1:
    def test_full(self, queries, cube):
        values, valid = cube
        assert queries.q1_aggregation("u") == pytest.approx(
            values[valid].mean())

    def test_range(self, queries, cube):
        values, valid = cube
        box = ((8, 8, 0), (60, 72, 3))
        sel = np.zeros_like(valid)
        sel[8:61, 8:73, :] = True
        sel &= valid
        assert queries.q1_aggregation("u", box) == pytest.approx(
            values[sel].mean())


class TestQ2:
    def test_windows_match_reference(self, queries, cube):
        values, valid = cube
        result = queries.q2_regrid("u", 8)
        counts = reference_window_counts(valid, 8)
        assert set(result) == set(counts)
        for key in list(result)[:20]:
            img, wr, wc = key
            window_vals = values[wr * 8:(wr + 1) * 8,
                                 wc * 8:(wc + 1) * 8, img]
            window_valid = valid[wr * 8:(wr + 1) * 8,
                                 wc * 8:(wc + 1) * 8, img]
            assert result[key] == pytest.approx(
                window_vals[window_valid].mean())

    def test_window_validation(self, queries):
        with pytest.raises(ArrayError):
            queries.q2_regrid("u", 0)


class TestQ3Q4:
    def test_q3(self, queries, cube):
        values, valid = cube
        mask = valid & (np.where(valid, values, 0) > 1.0)
        got = queries.q3_conditional_aggregation(
            "u", lambda xs: xs > 1.0)
        assert got == pytest.approx(values[mask].mean())

    def test_q4(self, queries, cube):
        values, valid = cube
        inner = valid & (np.where(valid, values, 0) > 0.5)
        final = inner & (np.where(valid, values, 0) > 2.0)
        got = queries.q4_polygons("u", lambda xs: xs > 0.5,
                                  lambda xs: xs > 2.0)
        assert got == int(final.sum())

    def test_q3_with_range(self, queries, cube):
        values, valid = cube
        box = ((0, 0, 0), (47, 47, 3))
        sel = np.zeros_like(valid)
        sel[:48, :48, :] = True
        mask = valid & sel & (np.where(valid, values, 0) > 1.0)
        got = queries.q3_conditional_aggregation(
            "u", lambda xs: xs > 1.0, box=box)
        assert got == pytest.approx(values[mask].mean())


class TestQ5:
    def test_density(self, queries, cube):
        _values, valid = cube
        counts = reference_window_counts(valid, 8)
        expected = sum(1 for n in counts.values() if n > 5)
        assert queries.q5_density("u", 8, 5) == expected

    def test_density_zero_threshold(self, queries, cube):
        _values, valid = cube
        counts = reference_window_counts(valid, 8)
        assert queries.q5_density("u", 8, 0) == len(counts)


class TestCrossSystemAgreement:
    """Spangle and the three baselines answer Table-I queries identically."""

    def test_q1_all_systems(self, ctx, bands, queries, cube):
        values, valid = cube
        expected = values[valid].mean()
        scenes = bands["u"]

        scispark = SciSparkSystem(ctx)
        assert scispark.aggregate_mean(
            scispark.load_scenes(scenes, (32, 32))) \
            == pytest.approx(expected)

        rasterframes = RasterFramesSystem(ctx)
        assert rasterframes.aggregate_mean(
            rasterframes.load_scenes(scenes, (32, 32))) \
            == pytest.approx(expected)

        with SciDBSystem(ctx) as db:
            db.store_scenes("img", scenes, (32, 32))
            assert db.aggregate_mean("img") == pytest.approx(expected)

        assert queries.q1_aggregation("u") == pytest.approx(expected)

    def test_q5_all_systems(self, ctx, bands, queries, cube):
        _values, valid = cube
        scenes = bands["u"]
        spangle = queries.q5_density("u", 8, 5)

        scispark = SciSparkSystem(ctx)
        a = scispark.density_windows(
            scispark.load_scenes(scenes, (32, 32)), 8, 5)

        rasterframes = RasterFramesSystem(ctx)
        b = rasterframes.density_windows(
            rasterframes.load_scenes(scenes, (32, 32)), 8, 5)

        with SciDBSystem(ctx) as db:
            db.store_scenes("img", scenes, (32, 32))
            c = db.density_windows("img", 8, 5)

        assert spangle == a == b == c


class TestMaskRDDPathsAgree:
    def test_q5_with_and_without_maskrdd(self, ctx, bands):
        lazy = SpangleRasterQueries(load_spangle_dataset(
            ctx, bands, chunk_shape=(32, 32, 1), use_mask_rdd=True))
        eager = SpangleRasterQueries(load_spangle_dataset(
            ctx, bands, chunk_shape=(32, 32, 1), use_mask_rdd=False))
        assert lazy.q5_density("u", 8, 5) == eager.q5_density("u", 8, 5)

    def test_q4_with_and_without_maskrdd(self, ctx, bands):
        lazy = SpangleRasterQueries(load_spangle_dataset(
            ctx, bands, chunk_shape=(32, 32, 1), use_mask_rdd=True))
        eager = SpangleRasterQueries(load_spangle_dataset(
            ctx, bands, chunk_shape=(32, 32, 1), use_mask_rdd=False))
        args = ("u", lambda xs: xs > 0.5, lambda xs: xs > 2.0)
        assert lazy.q4_polygons(*args) == eager.q4_polygons(*args)
