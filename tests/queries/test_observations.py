"""Tests for distributed source extraction, with scipy as the oracle."""

import numpy as np
import pytest
from scipy import ndimage

from repro.core import ArrayRDD
from repro.engine import ClusterContext
from repro.errors import ArrayError
from repro.queries.observations import (
    Observation,
    _label_components,
    brightest,
    extract_observations,
    flux_histogram,
    observations_per_image,
)


@pytest.fixture()
def ctx():
    return ClusterContext(num_executors=4, default_parallelism=4)


def scene_with_objects(shape, centers, radius=2, brightness=10.0):
    """A NaN background with square bright objects at given centers."""
    scene = np.full(shape, np.nan)
    for r, c in centers:
        scene[max(0, r - radius):r + radius + 1,
              max(0, c - radius):c + radius + 1] = brightness
    return scene


def as_array(ctx, scenes, chunk=(16, 16, 1)):
    cube = np.stack(scenes, axis=2)
    valid = ~np.isnan(cube)
    return ArrayRDD.from_numpy(ctx, np.where(valid, cube, 0.0), chunk,
                               valid=valid,
                               dim_names=("x", "y", "image"))


class TestLabeling:
    def test_matches_scipy(self):
        rng = np.random.default_rng(0)
        mask = rng.random((40, 40)) < 0.2
        labels = _label_components(mask, max_rounds=100)
        reference, n_ref = ndimage.label(
            mask, structure=[[0, 1, 0], [1, 1, 1], [0, 1, 0]])
        # same partition of pixels into components
        ours = {}
        for r, c in zip(*np.nonzero(mask)):
            ours.setdefault(labels[r, c], set()).add((r, c))
        theirs = {}
        for r, c in zip(*np.nonzero(mask)):
            theirs.setdefault(reference[r, c], set()).add((r, c))
        assert sorted(map(frozenset, ours.values())) \
            == sorted(map(frozenset, theirs.values()))
        assert len(ours) == n_ref

    def test_background_is_minus_one(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[1, 1] = True
        labels = _label_components(mask, 10)
        assert labels[0, 0] == -1
        assert labels[1, 1] == 5  # flattened index


class TestExtraction:
    def test_counts_objects_across_chunks(self, ctx):
        # objects deliberately straddling the 16-pixel chunk boundary
        centers = [(5, 5), (16, 16), (15, 40), (40, 15), (50, 50)]
        scenes = [scene_with_objects((64, 64), centers)]
        arr = as_array(ctx, scenes)
        observations = extract_observations(arr, threshold=1.0,
                                            max_radius=4)
        assert observations.count() == len(centers)

    def test_each_object_emitted_once(self, ctx):
        centers = [(16, 16)]  # dead on the chunk corner
        scenes = [scene_with_objects((32, 32), centers)]
        arr = as_array(ctx, scenes)
        got = extract_observations(arr, 1.0, max_radius=4).collect()
        assert len(got) == 1

    def test_centroid_and_flux(self, ctx):
        scenes = [scene_with_objects((32, 32), [(10, 12)], radius=1,
                                     brightness=4.0)]
        arr = as_array(ctx, scenes)
        obs = extract_observations(arr, 1.0, max_radius=3).collect()[0]
        assert obs.centroid_x == pytest.approx(10.0)
        assert obs.centroid_y == pytest.approx(12.0)
        assert obs.num_pixels == 9
        assert obs.flux == pytest.approx(36.0)
        assert obs.peak == 4.0
        assert obs.image == 0

    def test_threshold_excludes_faint(self, ctx):
        scene = scene_with_objects((32, 32), [(8, 8)], brightness=0.5)
        scene[20:23, 20:23] = 10.0
        arr = as_array(ctx, [scene])
        got = extract_observations(arr, threshold=1.0,
                                   max_radius=3).collect()
        assert len(got) == 1
        assert got[0].peak == 10.0

    def test_min_pixels(self, ctx):
        scene = np.full((32, 32), np.nan)
        scene[3, 3] = 9.0                      # single-pixel source
        scene[20:23, 20:23] = 9.0              # 9-pixel source
        arr = as_array(ctx, [scene])
        all_obs = extract_observations(arr, 1.0, max_radius=3,
                                       min_pixels=1).collect()
        big_only = extract_observations(arr, 1.0, max_radius=3,
                                        min_pixels=5).collect()
        assert len(all_obs) == 2
        assert len(big_only) == 1

    def test_multiple_images(self, ctx):
        scenes = [
            scene_with_objects((32, 32), [(8, 8)]),
            scene_with_objects((32, 32), [(8, 8), (20, 20)]),
        ]
        arr = as_array(ctx, scenes)
        observations = extract_observations(arr, 1.0, max_radius=3)
        per_image = observations_per_image(observations)
        assert per_image == {0: 1, 1: 2}

    def test_validation(self, ctx):
        arr2d = ArrayRDD.from_numpy(ctx, np.ones((8, 8)), (4, 4))
        with pytest.raises(ArrayError):
            extract_observations(arr2d, 1.0)
        arr3d = as_array(ctx, [np.ones((16, 16))])
        with pytest.raises(ArrayError):
            extract_observations(arr3d, 1.0, max_radius=0)

    def test_matches_scipy_on_random_field(self, ctx):
        rng = np.random.default_rng(1)
        scene = np.full((48, 48), np.nan)
        # scatter small sources
        for _ in range(12):
            r, c = rng.integers(2, 46, 2)
            scene[r - 1:r + 2, c - 1:c + 2] = rng.random() + 1.0
        arr = as_array(ctx, [scene])
        got = extract_observations(arr, 0.5, max_radius=4).collect()
        mask = ~np.isnan(scene)
        _labels, n_reference = ndimage.label(
            mask, structure=[[0, 1, 0], [1, 1, 1], [0, 1, 0]])
        assert len(got) == n_reference


class TestObservationQueries:
    def _observations(self, ctx):
        scenes = [scene_with_objects(
            (48, 48), [(8, 8), (24, 24), (40, 40)],
            brightness=b) for b in (2.0, 5.0, 9.0)]
        arr = as_array(ctx, scenes)
        return extract_observations(arr, 1.0, max_radius=3)

    def test_brightest(self, ctx):
        observations = self._observations(ctx)
        top = brightest(observations, k=3)
        assert len(top) == 3
        assert all(isinstance(o, Observation) for o in top)
        assert top[0].flux >= top[1].flux >= top[2].flux
        assert top[0].image == 2  # the brightest scene

    def test_flux_histogram(self, ctx):
        observations = self._observations(ctx)
        counts, edges = flux_histogram(observations, bins=4)
        assert counts.sum() == 9
        assert edges.size == 5

    def test_flux_histogram_empty(self, ctx):
        arr = as_array(ctx, [np.full((16, 16), np.nan)])
        observations = extract_observations(arr, 1.0, max_radius=3)
        counts, _edges = flux_histogram(observations)
        assert counts.sum() == 0
